// Built-in globals and value-type method tables for the MiniScript runtime.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "src/interp/interp.h"
#include "src/support/json.h"
#include "src/support/strings.h"

namespace turnstile {

namespace {

Value Arg(const std::vector<Value>& args, size_t i) {
  return i < args.size() ? args[i] : Value::Undefined();
}

// --- JSON bridge -------------------------------------------------------------

Json ValueToJson(const Value& value_in, int depth = 0) {
  Value value = UnboxDeep(value_in);
  if (depth > 32) {
    return Json(nullptr);
  }
  if (value.IsBool()) {
    return Json(value.AsBool());
  }
  if (value.IsNumber()) {
    return Json(value.AsNumber());
  }
  if (value.IsString()) {
    return Json(value.AsString());
  }
  if (value.IsArray()) {
    Json out = Json::Array();
    for (const Value& element : value.AsArray()->elements) {
      out.Append(ValueToJson(element, depth + 1));
    }
    return out;
  }
  if (value.IsObject()) {
    Json out = Json::Object();
    const ObjectPtr& obj = value.AsObject();
    for (Atom atom : obj->insertion_order) {
      auto it = obj->properties.find(atom);
      const std::string& key = AtomName(atom);
      if (it != obj->properties.end() && !it->second.IsFunction() &&
          !StartsWith(key, "__")) {
        out.Set(key, ValueToJson(it->second, depth + 1));
      }
    }
    return out;
  }
  return Json(nullptr);
}

Value JsonToValue(const Json& json) {
  switch (json.type()) {
    case Json::Type::kNull:
      return Value::Null();
    case Json::Type::kBool:
      return Value(json.bool_value());
    case Json::Type::kNumber:
      return Value(json.number_value());
    case Json::Type::kString:
      return Value(json.string_value());
    case Json::Type::kArray: {
      std::vector<Value> elements;
      for (const Json& item : json.array_items()) {
        elements.push_back(JsonToValue(item));
      }
      return Value(MakeArray(std::move(elements)));
    }
    case Json::Type::kObject: {
      ObjectPtr obj = MakeObject();
      for (const auto& [key, item] : json.object_items()) {
        obj->Set(key, JsonToValue(item));
      }
      return Value(obj);
    }
  }
  return Value::Undefined();
}

// --- promises ----------------------------------------------------------------

// Creates a promise object: { __promiseState, __promiseValue, then, catch }.
// Settlement callbacks run as microtasks. One level of then-chaining returns
// a new promise resolved with the callback's return value (chained promises
// beyond that are out of scope, as in the paper).
ObjectPtr MakePromiseObject(Interpreter& interp);

void SettlePromise(Interpreter& interp, const ObjectPtr& promise, const std::string& state,
                   Value value) {
  if (promise->Get("__promiseState").ToDisplayString() != "pending") {
    return;  // already settled
  }
  promise->Set("__promiseState", Value(state));
  promise->Set("__promiseValue", value);
  Value callbacks = promise->Get(state == "fulfilled" ? "__onFulfilled" : "__onRejected");
  if (callbacks.IsArray()) {
    for (const Value& cb : callbacks.AsArray()->elements) {
      if (cb.IsFunction()) {
        interp.ScheduleMicrotask(cb.AsFunction(), {value});
      }
    }
  }
}

ObjectPtr MakePromiseObject(Interpreter& interp) {
  ObjectPtr promise = MakeObject();
  promise->debug_tag = "promise";
  promise->Set("__promiseState", Value("pending"));
  promise->Set("__promiseValue", Value::Undefined());
  promise->Set("__onFulfilled", Value(MakeArray()));
  promise->Set("__onRejected", Value(MakeArray()));
  std::weak_ptr<Object> weak = promise;

  promise->Set("then", Value(MakeNativeFunction(
      "then", [weak](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        ObjectPtr self = weak.lock();
        if (self == nullptr) {
          return Value::Undefined();
        }
        Value on_fulfilled = Arg(args, 0);
        ObjectPtr next = MakePromiseObject(in);
        if (!on_fulfilled.IsFunction()) {
          return Value(next);
        }
        // Wrapper resolving `next` with the callback result. `next` is held
        // strongly: the wrapper lives in the *upstream* promise's callback
        // list, so this forms a chain, not a cycle (unlike the `then`
        // property itself, which must capture its own promise weakly).
        FunctionPtr handler = on_fulfilled.AsFunction();
        FunctionPtr wrapper = MakeNativeFunction(
            "thenHandler",
            [handler, next](Interpreter& in2, const Value&,
                            std::vector<Value>& inner_args) -> Result<Value> {
              TURNSTILE_ASSIGN_OR_RETURN(result,
                                         in2.CallFunction(handler, Value::Undefined(),
                                                          inner_args));
              SettlePromise(in2, next, "fulfilled", result);
              return Value::Undefined();
            });
        std::string state = self->Get("__promiseState").ToDisplayString();
        if (state == "fulfilled") {
          in.ScheduleMicrotask(wrapper, {self->Get("__promiseValue")});
        } else if (state == "pending") {
          self->Get("__onFulfilled").AsArray()->elements.push_back(Value(wrapper));
        }
        return Value(next);
      })));

  promise->Set("catch", Value(MakeNativeFunction(
      "catch", [weak](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        ObjectPtr self = weak.lock();
        if (self == nullptr) {
          return Value::Undefined();
        }
        Value on_rejected = Arg(args, 0);
        if (on_rejected.IsFunction()) {
          std::string state = self->Get("__promiseState").ToDisplayString();
          if (state == "rejected") {
            in.ScheduleMicrotask(on_rejected.AsFunction(), {self->Get("__promiseValue")});
          } else if (state == "pending") {
            self->Get("__onRejected").AsArray()->elements.push_back(on_rejected);
          }
        }
        return Value(self);
      })));
  return promise;
}

}  // namespace

// Creates a promise that is already fulfilled with `value` (used by native
// async APIs such as the simulated Deepstack client).
Value MakeResolvedPromise(Interpreter& interp, Value value) {
  ObjectPtr promise = MakePromiseObject(interp);
  SettlePromise(interp, promise, "fulfilled", std::move(value));
  return Value(promise);
}

// --- array methods -----------------------------------------------------------

namespace {

Result<Value> RequireArrayThis(const Value& this_value, const char* method) {
  Value v = Unbox(this_value);
  if (!v.IsArray()) {
    return Interpreter::TypeError(std::string(method) + " called on a non-array");
  }
  return v;
}

std::unordered_map<std::string, FunctionPtr> BuildArrayMethods() {
  std::unordered_map<std::string, FunctionPtr> methods;
  auto add = [&methods](const std::string& name, NativeFn fn) {
    methods[name] = MakeNativeFunction("Array." + name, std::move(fn));
  };

  add("push", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "push"));
    BumpHeapWriteEpoch();
    for (Value& arg : args) {
      array.AsArray()->elements.push_back(std::move(arg));
    }
    return Value(static_cast<double>(array.AsArray()->elements.size()));
  });
  add("pop", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "pop"));
    BumpHeapWriteEpoch();
    auto& elements = array.AsArray()->elements;
    if (elements.empty()) {
      return Value::Undefined();
    }
    Value last = elements.back();
    elements.pop_back();
    return last;
  });
  add("shift", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "shift"));
    BumpHeapWriteEpoch();
    auto& elements = array.AsArray()->elements;
    if (elements.empty()) {
      return Value::Undefined();
    }
    Value first = elements.front();
    elements.erase(elements.begin());
    return first;
  });
  add("unshift", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "unshift"));
    BumpHeapWriteEpoch();
    auto& elements = array.AsArray()->elements;
    elements.insert(elements.begin(), args.begin(), args.end());
    return Value(static_cast<double>(elements.size()));
  });
  add("indexOf", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "indexOf"));
    const auto& elements = array.AsArray()->elements;
    Value target = Arg(args, 0);
    for (size_t i = 0; i < elements.size(); ++i) {
      if (Unbox(elements[i]).StrictEquals(Unbox(target))) {
        return Value(static_cast<double>(i));
      }
    }
    return Value(-1.0);
  });
  add("includes", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "includes"));
    for (const Value& element : array.AsArray()->elements) {
      if (Unbox(element).StrictEquals(Unbox(Arg(args, 0)))) {
        return Value(true);
      }
    }
    return Value(false);
  });
  add("join", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "join"));
    std::string sep = Arg(args, 0).IsUndefined() ? "," : Unbox(Arg(args, 0)).ToDisplayString();
    std::string out;
    const auto& elements = array.AsArray()->elements;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (i > 0) {
        out += sep;
      }
      out += Unbox(elements[i]).ToDisplayString();
    }
    return Value(out);
  });
  add("slice", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "slice"));
    const auto& elements = array.AsArray()->elements;
    long size = static_cast<long>(elements.size());
    long begin = args.empty() ? 0 : static_cast<long>(Unbox(args[0]).ToNumber());
    long end = args.size() < 2 ? size : static_cast<long>(Unbox(args[1]).ToNumber());
    if (begin < 0) {
      begin += size;
    }
    if (end < 0) {
      end += size;
    }
    begin = std::clamp(begin, 0L, size);
    end = std::clamp(end, begin, size);
    return Value(MakeArray({elements.begin() + begin, elements.begin() + end}));
  });
  add("concat", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "concat"));
    std::vector<Value> out = array.AsArray()->elements;
    for (const Value& arg : args) {
      Value unboxed = Unbox(arg);
      if (unboxed.IsArray()) {
        const auto& more = unboxed.AsArray()->elements;
        out.insert(out.end(), more.begin(), more.end());
      } else {
        out.push_back(arg);
      }
    }
    return Value(MakeArray(std::move(out)));
  });
  add("map", [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "map"));
    Value fn = Unbox(Arg(args, 0));
    if (!fn.IsFunction()) {
      return Interpreter::TypeError("map requires a function");
    }
    std::vector<Value> out;
    const auto elements = array.AsArray()->elements;
    for (size_t i = 0; i < elements.size(); ++i) {
      TURNSTILE_ASSIGN_OR_RETURN(
          mapped, in.CallFunction(fn.AsFunction(), Value::Undefined(),
                                  {elements[i], Value(static_cast<double>(i))}));
      out.push_back(std::move(mapped));
    }
    return Value(MakeArray(std::move(out)));
  });
  add("filter", [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "filter"));
    Value fn = Unbox(Arg(args, 0));
    if (!fn.IsFunction()) {
      return Interpreter::TypeError("filter requires a function");
    }
    std::vector<Value> out;
    const auto elements = array.AsArray()->elements;
    for (size_t i = 0; i < elements.size(); ++i) {
      TURNSTILE_ASSIGN_OR_RETURN(
          keep, in.CallFunction(fn.AsFunction(), Value::Undefined(),
                                {elements[i], Value(static_cast<double>(i))}));
      if (keep.Truthy()) {
        out.push_back(elements[i]);
      }
    }
    return Value(MakeArray(std::move(out)));
  });
  add("forEach", [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "forEach"));
    Value fn = Unbox(Arg(args, 0));
    if (!fn.IsFunction()) {
      return Interpreter::TypeError("forEach requires a function");
    }
    const auto elements = array.AsArray()->elements;
    for (size_t i = 0; i < elements.size(); ++i) {
      TURNSTILE_ASSIGN_OR_RETURN(
          unused, in.CallFunction(fn.AsFunction(), Value::Undefined(),
                                  {elements[i], Value(static_cast<double>(i))}));
      (void)unused;
    }
    return Value::Undefined();
  });
  add("reduce", [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "reduce"));
    Value fn = Unbox(Arg(args, 0));
    if (!fn.IsFunction()) {
      return Interpreter::TypeError("reduce requires a function");
    }
    const auto elements = array.AsArray()->elements;
    size_t start = 0;
    Value acc;
    if (args.size() >= 2) {
      acc = args[1];
    } else {
      if (elements.empty()) {
        return Interpreter::TypeError("reduce of empty array with no initial value");
      }
      acc = elements[0];
      start = 1;
    }
    for (size_t i = start; i < elements.size(); ++i) {
      TURNSTILE_ASSIGN_OR_RETURN(
          next, in.CallFunction(fn.AsFunction(), Value::Undefined(),
                                {acc, elements[i], Value(static_cast<double>(i))}));
      acc = std::move(next);
    }
    return acc;
  });
  add("find", [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "find"));
    Value fn = Unbox(Arg(args, 0));
    if (!fn.IsFunction()) {
      return Interpreter::TypeError("find requires a function");
    }
    for (const Value& element : array.AsArray()->elements) {
      TURNSTILE_ASSIGN_OR_RETURN(hit,
                                 in.CallFunction(fn.AsFunction(), Value::Undefined(), {element}));
      if (hit.Truthy()) {
        return element;
      }
    }
    return Value::Undefined();
  });
  add("some", [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "some"));
    Value fn = Unbox(Arg(args, 0));
    if (!fn.IsFunction()) {
      return Interpreter::TypeError("some requires a function");
    }
    for (const Value& element : array.AsArray()->elements) {
      TURNSTILE_ASSIGN_OR_RETURN(hit,
                                 in.CallFunction(fn.AsFunction(), Value::Undefined(), {element}));
      if (hit.Truthy()) {
        return Value(true);
      }
    }
    return Value(false);
  });
  add("reverse", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "reverse"));
    std::reverse(array.AsArray()->elements.begin(), array.AsArray()->elements.end());
    return array;
  });
  add("sort", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(array, RequireArrayThis(self, "sort"));
    // Default JS sort: by string representation.
    std::stable_sort(array.AsArray()->elements.begin(), array.AsArray()->elements.end(),
                     [](const Value& a, const Value& b) {
                       return Unbox(a).ToDisplayString() < Unbox(b).ToDisplayString();
                     });
    return array;
  });
  return methods;
}

// --- string methods ----------------------------------------------------------

Result<Value> RequireStringThis(const Value& this_value, const char* method) {
  Value v = UnboxDeep(this_value);
  if (!v.IsString()) {
    return Interpreter::TypeError(std::string(method) + " called on a non-string");
  }
  return v;
}

std::unordered_map<std::string, FunctionPtr> BuildStringMethods() {
  std::unordered_map<std::string, FunctionPtr> methods;
  auto add = [&methods](const std::string& name, NativeFn fn) {
    methods[name] = MakeNativeFunction("String." + name, std::move(fn));
  };

  add("split", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "split"));
    std::string sep = Unbox(Arg(args, 0)).ToDisplayString();
    std::vector<Value> out;
    if (Arg(args, 0).IsUndefined()) {
      out.push_back(str);
    } else if (sep.empty()) {
      for (char c : str.AsString()) {
        out.push_back(Value(std::string(1, c)));
      }
    } else {
      size_t start = 0;
      const std::string& s = str.AsString();
      while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
          out.push_back(Value(s.substr(start)));
          break;
        }
        out.push_back(Value(s.substr(start, pos - start)));
        start = pos + sep.size();
      }
    }
    return Value(MakeArray(std::move(out)));
  });
  add("toUpperCase", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "toUpperCase"));
    std::string out = str.AsString();
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return Value(out);
  });
  add("toLowerCase", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "toLowerCase"));
    std::string out = str.AsString();
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return Value(out);
  });
  add("indexOf", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "indexOf"));
    size_t pos = str.AsString().find(Unbox(Arg(args, 0)).ToDisplayString());
    return Value(pos == std::string::npos ? -1.0 : static_cast<double>(pos));
  });
  add("includes", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "includes"));
    return Value(Contains(str.AsString(), Unbox(Arg(args, 0)).ToDisplayString()));
  });
  add("startsWith", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "startsWith"));
    return Value(StartsWith(str.AsString(), Unbox(Arg(args, 0)).ToDisplayString()));
  });
  add("endsWith", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "endsWith"));
    return Value(EndsWith(str.AsString(), Unbox(Arg(args, 0)).ToDisplayString()));
  });
  add("substring", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "substring"));
    const std::string& s = str.AsString();
    long size = static_cast<long>(s.size());
    long begin = std::clamp(static_cast<long>(Unbox(Arg(args, 0)).ToNumber()), 0L, size);
    long end = args.size() < 2 ? size
                               : std::clamp(static_cast<long>(Unbox(args[1]).ToNumber()), 0L, size);
    if (begin > end) {
      std::swap(begin, end);
    }
    return Value(s.substr(static_cast<size_t>(begin), static_cast<size_t>(end - begin)));
  });
  add("slice", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "slice"));
    const std::string& s = str.AsString();
    long size = static_cast<long>(s.size());
    long begin = args.empty() ? 0 : static_cast<long>(Unbox(args[0]).ToNumber());
    long end = args.size() < 2 ? size : static_cast<long>(Unbox(args[1]).ToNumber());
    if (begin < 0) {
      begin += size;
    }
    if (end < 0) {
      end += size;
    }
    begin = std::clamp(begin, 0L, size);
    end = std::clamp(end, begin, size);
    return Value(s.substr(static_cast<size_t>(begin), static_cast<size_t>(end - begin)));
  });
  add("trim", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "trim"));
    return Value(std::string(StrTrim(str.AsString())));
  });
  add("replace", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "replace"));
    std::string from = Unbox(Arg(args, 0)).ToDisplayString();
    std::string to = Unbox(Arg(args, 1)).ToDisplayString();
    std::string s = str.AsString();
    size_t pos = s.find(from);
    if (pos != std::string::npos && !from.empty()) {
      s.replace(pos, from.size(), to);
    }
    return Value(s);
  });
  add("charAt", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "charAt"));
    size_t i = static_cast<size_t>(Unbox(Arg(args, 0)).ToNumber());
    const std::string& s = str.AsString();
    return Value(i < s.size() ? std::string(1, s[i]) : std::string());
  });
  add("charCodeAt", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "charCodeAt"));
    size_t i = static_cast<size_t>(Unbox(Arg(args, 0)).ToNumber());
    const std::string& s = str.AsString();
    if (i >= s.size()) {
      return Value(std::nan(""));
    }
    return Value(static_cast<double>(static_cast<unsigned char>(s[i])));
  });
  add("padStart", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
    TURNSTILE_ASSIGN_OR_RETURN(str, RequireStringThis(self, "padStart"));
    size_t width = static_cast<size_t>(Unbox(Arg(args, 0)).ToNumber());
    std::string pad = args.size() < 2 ? " " : Unbox(args[1]).ToDisplayString();
    std::string s = str.AsString();
    while (s.size() < width && !pad.empty()) {
      s.insert(0, pad.substr(0, std::min(pad.size(), width - s.size())));
    }
    return Value(s);
  });
  add("toString", [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
    return Value(UnboxDeep(self).ToDisplayString());
  });
  return methods;
}

std::unordered_map<std::string, FunctionPtr> BuildFunctionMethods() {
  std::unordered_map<std::string, FunctionPtr> methods;
  methods["call"] = MakeNativeFunction(
      "Function.call",
      [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
        Value fn = Unbox(self);
        if (!fn.IsFunction()) {
          return Interpreter::TypeError("call target is not a function");
        }
        Value this_arg = Arg(args, 0);
        std::vector<Value> rest(args.begin() + (args.empty() ? 0 : 1), args.end());
        return in.CallFunction(fn.AsFunction(), this_arg, std::move(rest));
      });
  methods["apply"] = MakeNativeFunction(
      "Function.apply",
      [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
        Value fn = Unbox(self);
        if (!fn.IsFunction()) {
          return Interpreter::TypeError("apply target is not a function");
        }
        Value this_arg = Arg(args, 0);
        std::vector<Value> call_args;
        Value arg_array = Unbox(Arg(args, 1));
        if (arg_array.IsArray()) {
          call_args = arg_array.AsArray()->elements;
        }
        return in.CallFunction(fn.AsFunction(), this_arg, std::move(call_args));
      });
  methods["bind"] = MakeNativeFunction(
      "Function.bind",
      [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
        Value fn = Unbox(self);
        if (!fn.IsFunction()) {
          return Interpreter::TypeError("bind target is not a function");
        }
        BumpHeapWriteEpoch();
        FunctionPtr bound = std::make_shared<FunctionObject>(*fn.AsFunction());
        bound->bound_this = Arg(args, 0);
        bound->has_bound_this = true;
        return Value(bound);
      });
  return methods;
}

}  // namespace

FunctionPtr GetArrayMethod(const std::string& name) {
  static const auto* kMethods =
      new std::unordered_map<std::string, FunctionPtr>(BuildArrayMethods());
  auto it = kMethods->find(name);
  return it == kMethods->end() ? nullptr : it->second;
}

FunctionPtr GetStringMethod(const std::string& name) {
  static const auto* kMethods =
      new std::unordered_map<std::string, FunctionPtr>(BuildStringMethods());
  auto it = kMethods->find(name);
  return it == kMethods->end() ? nullptr : it->second;
}

FunctionPtr GetFunctionMethod(const std::string& name) {
  static const auto* kMethods =
      new std::unordered_map<std::string, FunctionPtr>(BuildFunctionMethods());
  auto it = kMethods->find(name);
  return it == kMethods->end() ? nullptr : it->second;
}

// --- globals -----------------------------------------------------------------

void Interpreter::InstallBuiltins() {
  // console
  ObjectPtr console = MakeObject();
  console->debug_tag = "console";
  auto log_fn = [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
    std::string line;
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) {
        line += " ";
      }
      line += UnboxDeep(args[i]).ToDisplayString();
    }
    in.io_world().Record(in.VirtualNow(), "console", "log", "", line);
    return Value::Undefined();
  };
  console->Set("log", Value(MakeNativeFunction("console.log", log_fn)));
  console->Set("error", Value(MakeNativeFunction("console.error", log_fn)));
  console->Set("warn", Value(MakeNativeFunction("console.warn", log_fn)));
  for (const char* method : {"log", "error", "warn"}) {
    console->Get(method).AsFunction()->is_io_sink = true;
  }
  DefineGlobal("console", Value(console));

  // Math
  ObjectPtr math = MakeObject();
  auto math1 = [](double (*fn)(double)) {
    return [fn](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
      return Value(fn(Unbox(Arg(args, 0)).ToNumber()));
    };
  };
  math->Set("floor", Value(MakeNativeFunction("Math.floor", math1(std::floor))));
  math->Set("ceil", Value(MakeNativeFunction("Math.ceil", math1(std::ceil))));
  math->Set("round", Value(MakeNativeFunction("Math.round", math1(std::round))));
  math->Set("abs", Value(MakeNativeFunction("Math.abs", math1(std::fabs))));
  math->Set("sqrt", Value(MakeNativeFunction("Math.sqrt", math1(std::sqrt))));
  math->Set("log", Value(MakeNativeFunction("Math.log", math1(std::log))));
  math->Set("exp", Value(MakeNativeFunction("Math.exp", math1(std::exp))));
  math->Set("min", Value(MakeNativeFunction(
      "Math.min", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        double best = std::numeric_limits<double>::infinity();
        for (const Value& arg : args) {
          best = std::min(best, Unbox(arg).ToNumber());
        }
        return Value(best);
      })));
  math->Set("max", Value(MakeNativeFunction(
      "Math.max", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        double best = -std::numeric_limits<double>::infinity();
        for (const Value& arg : args) {
          best = std::max(best, Unbox(arg).ToNumber());
        }
        return Value(best);
      })));
  math->Set("pow", Value(MakeNativeFunction(
      "Math.pow", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return Value(std::pow(Unbox(Arg(args, 0)).ToNumber(), Unbox(Arg(args, 1)).ToNumber()));
      })));
  math->Set("random", Value(MakeNativeFunction(
      "Math.random", [](Interpreter& in, const Value&, std::vector<Value>&) -> Result<Value> {
        return Value(in.rng().NextDouble());  // deterministic per interpreter
      })));
  DefineGlobal("Math", Value(math));

  // JSON
  ObjectPtr json = MakeObject();
  json->Set("stringify", Value(MakeNativeFunction(
      "JSON.stringify", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return Value(ValueToJson(Arg(args, 0)).Dump());
      })));
  json->Set("parse", Value(MakeNativeFunction(
      "JSON.parse", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        Result<Json> parsed = Json::Parse(UnboxDeep(Arg(args, 0)).ToDisplayString());
        if (!parsed.ok()) {
          in.SetPendingThrow(in.MakeError("JSON.parse: " + parsed.status().message()));
          return RuntimeError("uncaught exception: JSON.parse failure");
        }
        return JsonToValue(*parsed);
      })));
  DefineGlobal("JSON", Value(json));

  // Object
  ObjectPtr object_ns = MakeObject();
  object_ns->Set("keys", Value(MakeNativeFunction(
      "Object.keys", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value target = Unbox(Arg(args, 0));
        std::vector<Value> keys;
        if (target.IsObject()) {
          for (Atom atom : target.AsObject()->insertion_order) {
            const std::string& key = AtomName(atom);
            if (target.AsObject()->Has(atom) && !StartsWith(key, "__")) {
              keys.push_back(Value(key));
            }
          }
        }
        return Value(MakeArray(std::move(keys)));
      })));
  object_ns->Set("values", Value(MakeNativeFunction(
      "Object.values", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value target = Unbox(Arg(args, 0));
        std::vector<Value> values;
        if (target.IsObject()) {
          for (Atom atom : target.AsObject()->insertion_order) {
            if (target.AsObject()->Has(atom) && !StartsWith(AtomName(atom), "__")) {
              values.push_back(target.AsObject()->Get(atom));
            }
          }
        }
        return Value(MakeArray(std::move(values)));
      })));
  object_ns->Set("assign", Value(MakeNativeFunction(
      "Object.assign", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value target = Unbox(Arg(args, 0));
        if (!target.IsObject()) {
          return Interpreter::TypeError("Object.assign target must be an object");
        }
        for (size_t i = 1; i < args.size(); ++i) {
          Value source = Unbox(args[i]);
          if (source.IsObject()) {
            // Copy the key list first: Set on the target may fire proxy traps,
            // and self-assign would otherwise mutate the list being iterated.
            std::vector<Atom> source_keys = source.AsObject()->insertion_order;
            for (Atom atom : source_keys) {
              if (source.AsObject()->Has(atom)) {
                target.AsObject()->Set(atom, source.AsObject()->Get(atom));
              }
            }
          }
        }
        return target;
      })));
  DefineGlobal("Object", Value(object_ns));

  // Array namespace
  ObjectPtr array_ns = MakeObject();
  array_ns->Set("isArray", Value(MakeNativeFunction(
      "Array.isArray", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return Value(Unbox(Arg(args, 0)).IsArray());
      })));
  DefineGlobal("Array", Value(array_ns));

  // Conversions
  DefineGlobal("parseInt", Value(MakeNativeFunction(
      "parseInt", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string s = UnboxDeep(Arg(args, 0)).ToDisplayString();
        char* end = nullptr;
        long base = args.size() > 1 ? static_cast<long>(Unbox(args[1]).ToNumber()) : 10;
        long v = std::strtol(s.c_str(), &end, static_cast<int>(base));
        if (end == s.c_str()) {
          return Value(std::nan(""));
        }
        return Value(static_cast<double>(v));
      })));
  DefineGlobal("parseFloat", Value(MakeNativeFunction(
      "parseFloat", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string s = UnboxDeep(Arg(args, 0)).ToDisplayString();
        char* end = nullptr;
        double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str()) {
          return Value(std::nan(""));
        }
        return Value(v);
      })));
  DefineGlobal("String", Value(MakeNativeFunction(
      "String", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return Value(UnboxDeep(Arg(args, 0)).ToDisplayString());
      })));
  DefineGlobal("Number", Value(MakeNativeFunction(
      "Number", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return Value(UnboxDeep(Arg(args, 0)).ToNumber());
      })));
  DefineGlobal("Boolean", Value(MakeNativeFunction(
      "Boolean", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return Value(UnboxDeep(Arg(args, 0)).Truthy());
      })));
  DefineGlobal("isNaN", Value(MakeNativeFunction(
      "isNaN", [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return Value(static_cast<bool>(std::isnan(UnboxDeep(Arg(args, 0)).ToNumber())));
      })));

  // Error constructor (used with `new Error("...")` or plain call).
  DefineGlobal("Error", Value(MakeNativeFunction(
      "Error", [](Interpreter&, const Value& self, std::vector<Value>& args) -> Result<Value> {
        if (self.IsObject()) {
          self.AsObject()->Set("message", Value(UnboxDeep(Arg(args, 0)).ToDisplayString()));
          self.AsObject()->debug_tag = "error";
          return self;
        }
        ObjectPtr err = MakeObject();
        err->Set("message", Value(UnboxDeep(Arg(args, 0)).ToDisplayString()));
        err->debug_tag = "error";
        return Value(err);
      })));

  // Date
  ObjectPtr date = MakeObject();
  date->Set("now", Value(MakeNativeFunction(
      "Date.now", [](Interpreter& in, const Value&, std::vector<Value>&) -> Result<Value> {
        return Value(in.VirtualNow() * 1000.0);  // virtual milliseconds
      })));
  DefineGlobal("Date", Value(date));

  // Promise
  DefineGlobal("Promise", Value(MakeNativeFunction(
      "Promise", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value executor = Unbox(Arg(args, 0));
        ObjectPtr promise = MakePromiseObject(in);
        if (executor.IsFunction()) {
          std::weak_ptr<Object> weak = promise;
          FunctionPtr resolve = MakeNativeFunction(
              "resolve",
              [weak](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
                ObjectPtr p = weak.lock();
                if (p != nullptr) {
                  SettlePromise(in2, p, "fulfilled", Arg(a, 0));
                }
                return Value::Undefined();
              });
          FunctionPtr reject = MakeNativeFunction(
              "reject",
              [weak](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
                ObjectPtr p = weak.lock();
                if (p != nullptr) {
                  SettlePromise(in2, p, "rejected", Arg(a, 0));
                }
                return Value::Undefined();
              });
          TURNSTILE_ASSIGN_OR_RETURN(
              unused, in.CallFunction(executor.AsFunction(), Value::Undefined(),
                                      {Value(resolve), Value(reject)}));
          (void)unused;
        }
        return Value(promise);
      })));

  // Timers
  DefineGlobal("setTimeout", Value(MakeNativeFunction(
      "setTimeout", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value fn = Unbox(Arg(args, 0));
        if (!fn.IsFunction()) {
          return Interpreter::TypeError("setTimeout requires a function");
        }
        double delay_ms = Unbox(Arg(args, 1)).ToNumber();
        if (std::isnan(delay_ms)) {
          delay_ms = 0;
        }
        in.ScheduleTask(fn.AsFunction(), {}, delay_ms / 1000.0);
        return Value(0.0);
      })));

  // require
  DefineGlobal("require", Value(MakeNativeFunction(
      "require", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        return in.RequireModule(UnboxDeep(Arg(args, 0)).ToDisplayString());
      })));
}

}  // namespace turnstile
