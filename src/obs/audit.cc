#include "src/obs/audit.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/json.h"

namespace turnstile {
namespace obs {

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kLabelAttach:
      return "label_attach";
    case AuditKind::kMerge:
      return "merge";
    case AuditKind::kInvokeLabeller:
      return "invoke_labeller";
    case AuditKind::kFlowCheck:
      return "flow_check";
    case AuditKind::kDeclassify:
      return "declassify";
    case AuditKind::kSinkWrite:
      return "sink_write";
  }
  return "?";
}

std::string AuditEvent::Canonical() const {
  std::string out_str = "#" + std::to_string(seq) + " " + AuditKindName(kind) + "[" +
                        subject + "]";
  out_str += " data=" + std::to_string(data) + " recv=" + std::to_string(receiver) +
             " out=" + std::to_string(out);
  if (kind == AuditKind::kFlowCheck) {
    out_str += allowed ? " allow" : " deny";
  }
  if (!labels.empty()) {
    out_str += " " + labels;
  }
  if (!rule.empty()) {
    out_str += " rule='" + rule + "'";
  }
  out_str += " trace=" + std::to_string(trace_id);
  if (!node.empty()) {
    out_str += " node=" + node;
  }
  if (!app.empty()) {
    out_str += " app=" + app;
  }
  return out_str;
}

std::string AuditEvent::ToJsonLine() const {
  Json json = Json::Object();
  json.Set("seq", Json(static_cast<double>(seq)));
  json.Set("kind", Json(AuditKindName(kind)));
  json.Set("subject", Json(subject));
  json.Set("data", Json(static_cast<double>(data)));
  json.Set("receiver", Json(static_cast<double>(receiver)));
  json.Set("out", Json(static_cast<double>(out)));
  if (kind == AuditKind::kFlowCheck) {
    json.Set("allowed", Json(allowed));
  }
  if (!labels.empty()) {
    json.Set("labels", Json(labels));
  }
  if (!rule.empty()) {
    json.Set("rule", Json(rule));
  }
  json.Set("trace", Json(static_cast<double>(trace_id)));
  if (!node.empty()) {
    json.Set("node", Json(node));
  }
  if (!app.empty()) {
    json.Set("app", Json(app));
  }
  return json.Dump(/*pretty=*/false);
}

AuditLedger& AuditLedger::Global() {
  static AuditLedger* instance = new AuditLedger();  // never destroyed:
  return *instance;                                  // handles must outlive
}                                                    // static teardown

AuditLedger::AuditLedger(TraceRecorder* recorder, Metrics* metrics) {
  recorder_ = recorder != nullptr ? recorder : &TraceRecorder::Global();
  metrics_ = metrics != nullptr ? metrics : &Metrics::Global();
  for (int i = 0; i < kAuditKindCount; ++i) {
    metric_kind_[i] = metrics_->GetCounter(MetricWithLabel(
        "audit.events_total", "kind", AuditKindName(static_cast<AuditKind>(i))));
  }
  metric_flows_allowed_ = metrics_->GetCounter("audit.flows_allowed");
  metric_flows_denied_ = metrics_->GetCounter("audit.flows_denied");
  metric_dropped_ = metrics_->GetCounter("audit.dropped_events");
  metric_app_events_ = metrics_->GetCounter(MetricWithLabel("audit.app_events", "app", ""));
}

void AuditLedger::Enable(size_t capacity) {
  if (capacity == 0) {
    capacity = 1;
  }
  if (!enabled_) {
    // Trace/node stamping rides on the recorder's per-message context; if the
    // user did not enable it themselves, co-enable it and undo on Disable()
    // (the profiler makes the same arrangement).
    if (!recorder_->enabled()) {
      recorder_->Enable();
      disable_recorder_on_disable_ = true;
    }
  }
  enabled_ = true;
  capacity_ = capacity;
  ring_.assign(capacity_, AuditEvent{});
  head_ = 0;
  size_ = 0;
  next_seq_ = 1;
  dropped_ = 0;
  spilled_ = 0;
}

void AuditLedger::Disable() {
  if (enabled_ && spill_ != nullptr) {
    FlushSpill();
  }
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
  if (enabled_ && disable_recorder_on_disable_) {
    recorder_->Disable();
  }
  disable_recorder_on_disable_ = false;
  enabled_ = false;
  capacity_ = 0;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
  next_seq_ = 1;
  dropped_ = 0;
  spilled_ = 0;
}

void AuditLedger::Clear() {
  head_ = 0;
  size_ = 0;
  next_seq_ = 1;
  dropped_ = 0;
  spilled_ = 0;
}

void AuditLedger::set_app(const std::string& app) {
  if (app == app_) {
    return;
  }
  app_ = app;
  metric_app_events_ = metrics_->GetCounter(
      MetricWithLabel("audit.app_events", "app", app_));
}

bool AuditLedger::SetSpillPath(const std::string& path) {
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
  spill_ = std::fopen(path.c_str(), "w");
  if (spill_ == nullptr) {
    std::fprintf(stderr, "audit: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  return true;
}

void AuditLedger::WriteSpillLine(const AuditEvent& event) {
  std::string line = event.ToJsonLine();
  std::fwrite(line.data(), 1, line.size(), spill_);
  std::fputc('\n', spill_);
  ++spilled_;
}

void AuditLedger::FlushSpill() {
  if (spill_ == nullptr || size_ == 0) {
    return;
  }
  size_t start = (head_ + capacity_ - size_) % capacity_;
  for (size_t i = 0; i < size_; ++i) {
    WriteSpillLine(ring_[(start + i) % capacity_]);
  }
  std::fflush(spill_);
  head_ = 0;
  size_ = 0;  // drained: a later flush must not rewrite these events
}

void AuditLedger::Record(AuditEvent event) {
  if (!enabled_) {
    return;
  }
  event.seq = next_seq_++;
  event.trace_id = recorder_->current_trace();
  event.node = recorder_->OriginOf(event.trace_id);
  event.app = app_;
  metric_kind_[static_cast<int>(event.kind)]->Increment();
  metric_app_events_->Increment();
  if (event.kind == AuditKind::kFlowCheck) {
    (event.allowed ? metric_flows_allowed_ : metric_flows_denied_)->Increment();
  }
  Push(std::move(event));
}

void AuditLedger::Push(AuditEvent event) {
  if (size_ == capacity_) {
    // Ring full: spill the evicted event (append-only completeness) or count
    // it as dropped when no spill target is configured.
    if (spill_ != nullptr) {
      WriteSpillLine(ring_[head_]);
    } else {
      ++dropped_;
      metric_dropped_->Increment();
    }
  } else {
    ++size_;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

std::vector<AuditEvent> AuditLedger::Snapshot() const {
  std::vector<AuditEvent> out;
  out.reserve(size_);
  size_t start = (head_ + capacity_ - size_) % capacity_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string AuditLedger::CanonicalLog() const {
  std::string out;
  size_t start = (head_ + capacity_ - size_) % capacity_;
  for (size_t i = 0; i < size_; ++i) {
    out += ring_[(start + i) % capacity_].Canonical();
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace turnstile
