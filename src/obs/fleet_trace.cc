#include "src/obs/fleet_trace.h"

#include <algorithm>
#include <set>
#include <utility>

namespace turnstile {
namespace obs {

void FleetTraceAssembler::AddContext(int shard, std::string lane, std::string source,
                                     std::vector<TraceEvent> events,
                                     std::vector<FleetSpanBinding> bindings) {
  Context context;
  context.shard = shard;
  context.lane = std::move(lane);
  context.source = std::move(source);
  context.events = std::move(events);
  context.bindings = std::move(bindings);
  contexts_.push_back(std::move(context));
}

std::vector<uint64_t> FleetTraceAssembler::FleetTraceIds() const {
  std::set<uint64_t> ids;
  for (const Context& context : contexts_) {
    for (const FleetSpanBinding& binding : context.bindings) {
      if (binding.fleet_trace_id != 0) {
        ids.insert(binding.fleet_trace_id);
      }
    }
  }
  return std::vector<uint64_t>(ids.begin(), ids.end());
}

std::vector<FleetTraceAssembler::Hop> FleetTraceAssembler::HopsOf(
    uint64_t fleet_trace_id) const {
  std::vector<Hop> hops;
  for (const Context& context : contexts_) {
    for (const FleetSpanBinding& binding : context.bindings) {
      if (binding.fleet_trace_id != fleet_trace_id) {
        continue;
      }
      Hop hop;
      hop.shard = context.shard;
      hop.lane = context.lane;
      hop.source = context.source;
      hop.hop = binding.hop;
      hop.local_trace_id = binding.local_trace_id;
      hop.parent_span = binding.parent_span;
      for (const TraceEvent& event : context.events) {
        if (event.trace_id == binding.local_trace_id) {
          hop.events.push_back(event);
        }
      }
      hops.push_back(std::move(hop));
    }
  }
  std::sort(hops.begin(), hops.end(), [](const Hop& a, const Hop& b) {
    if (a.hop != b.hop) {
      return a.hop < b.hop;
    }
    if (a.shard != b.shard) {
      return a.shard < b.shard;
    }
    return a.local_trace_id < b.local_trace_id;
  });
  return hops;
}

uint64_t FleetTraceAssembler::wire_hops() const {
  uint64_t crossings = 0;
  for (const Context& context : contexts_) {
    for (const FleetSpanBinding& binding : context.bindings) {
      if (binding.fleet_trace_id != 0 && binding.hop > 0) {
        ++crossings;
      }
    }
  }
  return crossings;
}

Json FleetTraceAssembler::ChromeTraceJson() const {
  Json events = Json::Array();

  // Lane metadata: one thread per shard under a single "turnstile fleet"
  // process, so Perfetto groups every shard's spans side by side.
  Json process_meta = Json::Object();
  process_meta.Set("ph", Json("M"));
  process_meta.Set("name", Json("process_name"));
  process_meta.Set("pid", Json(0));
  process_meta.Set("tid", Json(0));
  Json process_args = Json::Object();
  process_args.Set("name", Json("turnstile fleet"));
  process_meta.Set("args", std::move(process_args));
  events.Append(std::move(process_meta));

  std::set<int> shards_seen;
  for (const Context& context : contexts_) {
    if (!shards_seen.insert(context.shard).second) {
      continue;
    }
    Json thread_meta = Json::Object();
    thread_meta.Set("ph", Json("M"));
    thread_meta.Set("name", Json("thread_name"));
    thread_meta.Set("pid", Json(0));
    thread_meta.Set("tid", Json(context.shard));
    Json args = Json::Object();
    args.Set("name", Json(context.lane));
    thread_meta.Set("args", std::move(args));
    events.Append(std::move(thread_meta));
  }

  // Synthetic causal timeline: fleet traces in id order, hops in hop order,
  // 2us per event — readable layout without wall-clock timestamps.
  int64_t cursor = 0;
  for (uint64_t fleet_id : FleetTraceIds()) {
    std::vector<Hop> hops = HopsOf(fleet_id);
    // ts of a hop's first/last event, keyed by index — flow arrows bind here.
    std::vector<std::pair<int64_t, int64_t>> spans(hops.size(), {0, 0});
    for (size_t h = 0; h < hops.size(); ++h) {
      const Hop& hop = hops[h];
      spans[h].first = cursor;
      for (const TraceEvent& event : hop.events) {
        Json out = Json::Object();
        out.Set("ph", Json("X"));
        out.Set("name", Json(std::string(SpanKindName(event.kind)) + ":" + event.subject));
        out.Set("cat", Json("fleet"));
        out.Set("pid", Json(0));
        out.Set("tid", Json(hop.shard));
        out.Set("ts", Json(static_cast<int64_t>(cursor)));
        out.Set("dur", Json(1));
        Json args = Json::Object();
        args.Set("fleet_trace", Json(fleet_id));
        args.Set("hop", Json(static_cast<int>(hop.hop)));
        args.Set("local_trace", Json(event.trace_id));
        args.Set("source", Json(hop.source));
        if (!event.detail.empty()) {
          args.Set("detail", Json(event.detail));
        }
        args.Set("vtime", Json(event.vtime));
        out.Set("args", std::move(args));
        events.Append(std::move(out));
        spans[h].second = cursor;
        cursor += 2;
      }
      if (hop.events.empty()) {
        spans[h].second = cursor;
        cursor += 2;
      }
    }
    // Flow arrows: each hop > 0 binds back to the hop whose local trace id is
    // its parent_span (falling back to the previous hop index when eviction
    // lost the parent's events).
    for (size_t h = 0; h < hops.size(); ++h) {
      if (hops[h].hop == 0) {
        continue;
      }
      size_t parent = h > 0 ? h - 1 : 0;
      for (size_t p = 0; p < hops.size(); ++p) {
        if (hops[p].hop + 1 == hops[h].hop && hops[p].local_trace_id == hops[h].parent_span) {
          parent = p;
          break;
        }
      }
      const uint64_t flow_id = (fleet_id << 8) | (hops[h].hop & 0xFF);
      Json start = Json::Object();
      start.Set("ph", Json("s"));
      start.Set("id", Json(flow_id));
      start.Set("name", Json("wire"));
      start.Set("cat", Json("fleet"));
      start.Set("pid", Json(0));
      start.Set("tid", Json(hops[parent].shard));
      start.Set("ts", Json(spans[parent].second));
      events.Append(std::move(start));
      Json finish = Json::Object();
      finish.Set("ph", Json("f"));
      finish.Set("bp", Json("e"));
      finish.Set("id", Json(flow_id));
      finish.Set("name", Json("wire"));
      finish.Set("cat", Json("fleet"));
      finish.Set("pid", Json(0));
      finish.Set("tid", Json(hops[h].shard));
      finish.Set("ts", Json(spans[h].first));
      events.Append(std::move(finish));
    }
  }

  Json root = Json::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", Json("ms"));
  return root;
}

}  // namespace obs
}  // namespace turnstile
