#include "src/obs/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"

namespace turnstile {
namespace obs {

namespace {

// Writes the whole buffer, swallowing SIGPIPE (a client that hung up
// mid-response is its problem, not ours).
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

// --- TelemetryServer ---------------------------------------------------------

TelemetryServer& TelemetryServer::Global() {
  static TelemetryServer* instance = new TelemetryServer();
  return *instance;
}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("telemetry: server already running on port " +
                                   std::to_string(port_.load()));
  }
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("telemetry: port out of range: " + std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("telemetry: socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = InternalError(std::string("telemetry: bind 127.0.0.1:") +
                                  std::to_string(port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status = InternalError(std::string("telemetry: listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_.store(static_cast<int>(ntohs(bound.sin_port)), std::memory_order_release);
  } else {
    port_.store(port, std::memory_order_release);
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::Ok();
}

void TelemetryServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // shutdown() on a listening socket wakes the blocked accept() (EINVAL on
  // Linux); the fd itself is closed only after the join, so the reader can
  // never race a recycled descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_.store(0, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void TelemetryServer::SetMetricsProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(provider_mu_);
  metrics_provider_ = std::move(provider);
}

void TelemetryServer::SetHealthProvider(std::function<Json()> provider) {
  std::lock_guard<std::mutex> lock(provider_mu_);
  health_provider_ = std::move(provider);
}

void TelemetryServer::ClearProviders() {
  std::lock_guard<std::mutex> lock(provider_mu_);
  metrics_provider_ = nullptr;
  health_provider_ = nullptr;
}

void TelemetryServer::PublishTrace(uint64_t fleet_trace_id, std::string trace_json) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  traces_[fleet_trace_id] = std::move(trace_json);
}

void TelemetryServer::PublishFullTrace(std::string trace_json) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  full_trace_ = std::move(trace_json);
}

void TelemetryServer::Serve() {
  while (true) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        break;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      break;  // listener gone: nothing left to serve
    }
    HandleClient(client);
    ::close(client);
  }
}

void TelemetryServer::HandleClient(int client_fd) {
  // One blocking read is enough for the request line of every client we
  // care about (curl, the tests); HTTP/1.0, no keep-alive, no body.
  char buffer[2048];
  ssize_t n = ::recv(client_fd, buffer, sizeof(buffer) - 1, 0);
  if (n <= 0) {
    return;
  }
  buffer[n] = '\0';
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string request(buffer);
  std::string path;
  if (request.rfind("GET ", 0) == 0) {
    size_t end = request.find(' ', 4);
    size_t line_end = request.find('\r', 4);
    if (end == std::string::npos || (line_end != std::string::npos && end > line_end)) {
      end = line_end;
    }
    if (end != std::string::npos) {
      path = request.substr(4, end - 4);
    }
  }
  if (path.empty()) {
    SendAll(client_fd, HttpResponse("400 Bad Request", "text/plain", "bad request\n"));
    return;
  }

  if (path == "/metrics") {
    std::string body;
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      body = metrics_provider_ ? metrics_provider_() : Metrics::Global().ToPrometheusText();
    }
    SendAll(client_fd, HttpResponse("200 OK", "text/plain; version=0.0.4", body));
    return;
  }
  if (path == "/healthz") {
    Json body = Json::Object();
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      if (health_provider_) {
        body = health_provider_();
      } else {
        body.Set("ok", Json(true));
        body.Set("source", Json("default"));
      }
    }
    bool ok = body.GetBool("ok", true);
    SendAll(client_fd, HttpResponse(ok ? "200 OK" : "503 Service Unavailable",
                                    "application/json", body.Dump(/*pretty=*/false) + "\n"));
    return;
  }
  if (path == "/traces") {
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (full_trace_.empty()) {
      SendAll(client_fd,
              HttpResponse("404 Not Found", "text/plain", "no assembled fleet trace yet\n"));
    } else {
      SendAll(client_fd, HttpResponse("200 OK", "application/json", full_trace_));
    }
    return;
  }
  if (path.rfind("/traces/", 0) == 0) {
    const std::string id_text = path.substr(8);
    char* end = nullptr;
    unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
    std::lock_guard<std::mutex> lock(trace_mu_);
    auto it = (end != nullptr && *end == '\0' && !id_text.empty())
                  ? traces_.find(static_cast<uint64_t>(id))
                  : traces_.end();
    if (it == traces_.end()) {
      SendAll(client_fd, HttpResponse("404 Not Found", "text/plain",
                                      "unknown fleet trace '" + id_text + "'\n"));
    } else {
      SendAll(client_fd, HttpResponse("200 OK", "application/json", it->second));
    }
    return;
  }
  SendAll(client_fd,
          HttpResponse("404 Not Found", "text/plain",
                       "unknown path (try /metrics, /healthz, /traces/<id>)\n"));
}

// --- TelemetrySnapshotWriter -------------------------------------------------

TelemetrySnapshotWriter& TelemetrySnapshotWriter::Global() {
  static TelemetrySnapshotWriter* instance = new TelemetrySnapshotWriter();
  return *instance;
}

TelemetrySnapshotWriter::~TelemetrySnapshotWriter() { Stop(); }

Status TelemetrySnapshotWriter::Start(const std::string& path, int interval_ms,
                                      Metrics* metrics) {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("telemetry: snapshot writer already running on '" + path_ +
                                   "'");
  }
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return InternalError("telemetry: cannot open '" + path + "' for append");
  }
  path_ = path;
  interval_ms_ = interval_ms < 1 ? 1 : interval_ms;
  metrics_ = metrics != nullptr ? metrics : &Metrics::Global();
  file_ = file;
  written_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void TelemetrySnapshotWriter::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  WriteSnapshot();  // final line: short runs still record one snapshot
  std::fclose(file_);
  file_ = nullptr;
  running_.store(false, std::memory_order_release);
}

void TelemetrySnapshotWriter::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_), [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    WriteSnapshot();
    lock.lock();
  }
}

void TelemetrySnapshotWriter::WriteSnapshot() {
  Json line = Json::Object();
  line.Set("seq", Json(written_.load(std::memory_order_relaxed)));
  line.Set("interval_ms", Json(interval_ms_));
  line.Set("metrics", metrics_->ToJson());
  std::string text = line.Dump(/*pretty=*/false) + "\n";
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fflush(file_);
  written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace turnstile
