#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace turnstile {
namespace obs {

namespace {

std::string FormatDouble(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

// Splits a registry key made by MetricWithLabel back into family and label
// block: "a.b{x=\"y\"}" -> ("a.b", "{x=\"y\"}"). Unlabeled keys return an
// empty label block. Only the family part is sanitized for exposition — the
// label block already carries escaped values.
std::pair<std::string, std::string> SplitLabels(const std::string& key) {
  size_t brace = key.find('{');
  if (brace == std::string::npos) {
    return {key, ""};
  }
  return {key.substr(0, brace), key.substr(brace)};
}

// Renders a possibly-labeled registry key for exposition, with optional
// extra label content merged inside the block (used for histogram `le`).
std::string PrometheusSeries(const std::string& key, const std::string& suffix = "",
                             const std::string& extra_label = "") {
  auto [family, labels] = SplitLabels(key);
  std::string out = PrometheusName(family) + suffix;
  if (labels.empty()) {
    if (!extra_label.empty()) {
      out += "{" + extra_label + "}";
    }
    return out;
  }
  if (extra_label.empty()) {
    return out + labels;
  }
  // Inject before the closing brace: {a="b"} + le="x" -> {a="b",le="x"}.
  return out + labels.substr(0, labels.size() - 1) + "," + extra_label + "}";
}

}  // namespace

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricWithLabel(const std::string& family, const std::string& label,
                            const std::string& value) {
  return family + "{" + label + "=\"" + PrometheusLabelValue(value) + "\"}";
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size()) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  size_t i = 0;
  for (; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      buckets_[i].fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  if (i == bounds_.size()) {
    inf_bucket_.fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size() + 1);
  uint64_t running = 0;
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    running += bucket.load(std::memory_order_relaxed);
    out.push_back(running);
  }
  out.push_back(running + inf_bucket_.load(std::memory_order_relaxed));
  return out;
}

bool Histogram::Merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    // A rejected merge used to vanish silently; make it observable. The
    // counter lives in the global registry (a Histogram has no back-pointer
    // to its owning registry), the warning fires once per process.
    Metrics::Global().GetCounter("obs.merge_rejected")->Increment();
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "obs: histogram merge rejected (bucket bounds differ; %zu vs %zu bounds); "
                   "counting under obs.merge_rejected\n",
                   bounds_.size(), other.bounds_.size());
    }
    return false;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t delta = other.buckets_[i].load(std::memory_order_relaxed);
    if (delta != 0) {
      buckets_[i].fetch_add(delta, std::memory_order_relaxed);
    }
  }
  inf_bucket_.fetch_add(other.inf_bucket_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return true;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  inf_bucket_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> cumulative = CumulativeCounts();
  uint64_t total = cumulative.back();
  if (total == 0) {
    return 0.0;
  }
  if (total == 1) {
    // One sample: every quantile is that sample. Bucket interpolation would
    // otherwise report a fraction of the bucket's lower bound.
    return sum();
  }
  q = std::min(std::max(q, 0.0), 1.0);
  double rank = q * static_cast<double>(total);
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (static_cast<double>(cumulative[i]) >= rank) {
      double lower_bound = i == 0 ? 0.0 : bounds_[i - 1];
      uint64_t lower_count = i == 0 ? 0 : cumulative[i - 1];
      uint64_t in_bucket = cumulative[i] - lower_count;
      if (in_bucket == 0) {
        return bounds_[i];
      }
      double fraction = (rank - static_cast<double>(lower_count)) / static_cast<double>(in_bucket);
      return lower_bound + fraction * (bounds_[i] - lower_bound);
    }
  }
  // Rank falls in +Inf: no upper bound to interpolate towards, clamp to the
  // largest finite bound (or fall back to mean when there are no bounds).
  if (bounds_.empty()) {
    return sum() / static_cast<double>(total);
  }
  return bounds_.back();
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0};
}

// --- Metrics registry --------------------------------------------------------

Metrics& Metrics::Global() {
  static Metrics* instance = new Metrics();  // never destroyed: pointers must
  return *instance;                          // outlive static teardown order
}

Counter* Metrics::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Counter>();
  }
  return it->second.get();
}

Gauge* Metrics::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
  }
  return it->second.get();
}

FloatGauge* Metrics::GetFloatGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = float_gauges_.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<FloatGauge>();
  }
  return it->second.get();
}

Histogram* Metrics::GetHistogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Histogram>(std::move(bounds));
  }
  return it->second.get();
}

Json Metrics::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, Json(counter->value()));
  }
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, Json(static_cast<double>(gauge->value())));
  }
  for (const auto& [name, gauge] : float_gauges_) {
    gauges.Set(name, Json(gauge->value()));
  }
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    Json buckets = Json::Array();
    std::vector<uint64_t> cumulative = histogram->CumulativeCounts();
    for (size_t i = 0; i < histogram->bounds().size(); ++i) {
      Json bucket = Json::Object();
      bucket.Set("le", Json(histogram->bounds()[i]));
      bucket.Set("count", Json(cumulative[i]));
      buckets.Append(std::move(bucket));
    }
    // JSON has no infinity literal; the +Inf bound is a string, as in the
    // Prometheus text exposition.
    Json inf_bucket = Json::Object();
    inf_bucket.Set("le", Json("+Inf"));
    inf_bucket.Set("count", Json(cumulative.back()));
    buckets.Append(std::move(inf_bucket));
    Json entry = Json::Object();
    entry.Set("count", Json(histogram->count()));
    entry.Set("sum", Json(histogram->sum()));
    entry.Set("p50", Json(histogram->Quantile(0.50)));
    entry.Set("p90", Json(histogram->Quantile(0.90)));
    entry.Set("p99", Json(histogram->Quantile(0.99)));
    entry.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(entry));
  }
  Json out = Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

std::string Metrics::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + PrometheusName(SplitLabels(name).first) + " counter\n";
    out += PrometheusSeries(name) + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + PrometheusName(SplitLabels(name).first) + " gauge\n";
    out += PrometheusSeries(name) + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, gauge] : float_gauges_) {
    out += "# TYPE " + PrometheusName(SplitLabels(name).first) + " gauge\n";
    out += PrometheusSeries(name) + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "# TYPE " + PrometheusName(SplitLabels(name).first) + " histogram\n";
    std::vector<uint64_t> cumulative = histogram->CumulativeCounts();
    for (size_t i = 0; i < histogram->bounds().size(); ++i) {
      out += PrometheusSeries(name, "_bucket",
                              "le=\"" + FormatDouble(histogram->bounds()[i]) + "\"") +
             " " + std::to_string(cumulative[i]) + "\n";
    }
    out += PrometheusSeries(name, "_bucket", "le=\"+Inf\"") + " " +
           std::to_string(cumulative.back()) + "\n";
    out += PrometheusSeries(name, "_sum") + " " + FormatDouble(histogram->sum()) + "\n";
    out += PrometheusSeries(name, "_count") + " " + std::to_string(histogram->count()) + "\n";
  }
  return out;
}

void Metrics::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, gauge] : float_gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

bool MaybeWriteMetricsSnapshot(int argc, char** argv) {
  bool requested = false;
  std::string destination;  // empty = stdout
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i] == nullptr ? "" : argv[i];
    if (arg == "--json") {
      requested = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      requested = true;
      destination = arg.substr(7);
    }
  }
  const char* env = std::getenv("TURNSTILE_BENCH_JSON");
  if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    requested = true;
    if (std::string(env) != "1") {
      destination = env;
    }
  }
  if (!requested) {
    return false;
  }
  std::string snapshot = Metrics::Global().ToJson().Dump(/*pretty=*/true);
  if (destination.empty()) {
    std::printf("%s\n", snapshot.c_str());
    return true;
  }
  std::FILE* file = std::fopen(destination.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "metrics snapshot: cannot open '%s' for writing\n",
                 destination.c_str());
    return true;
  }
  std::fprintf(file, "%s\n", snapshot.c_str());
  std::fclose(file);
  std::fprintf(stderr, "metrics snapshot written to %s\n", destination.c_str());
  return true;
}

}  // namespace obs
}  // namespace turnstile
