#include "src/obs/trace.h"

#include <cstdio>

namespace turnstile {
namespace obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kInject:
      return "inject";
    case SpanKind::kNodeEnter:
      return "node_enter";
    case SpanKind::kNodeSend:
      return "node_send";
    case SpanKind::kLoopTurn:
      return "loop_turn";
    case SpanKind::kDiftLabel:
      return "dift_label";
    case SpanKind::kDiftBinaryOp:
      return "dift_binary_op";
    case SpanKind::kDiftCheck:
      return "dift_check";
    case SpanKind::kDiftInvoke:
      return "dift_invoke";
    case SpanKind::kViolation:
      return "violation";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " @%.3f (trace %llu)", vtime,
                static_cast<unsigned long long>(trace_id));
  std::string out = std::string(SpanKindName(kind)) + "[" + subject + "]";
  if (!detail.empty()) {
    out += " " + detail;
  }
  out += buffer;
  return out;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

void TraceRecorder::Enable(size_t capacity) {
  if (capacity == 0) {
    capacity = 1;
  }
  if (enabled_ && capacity == capacity_) {
    return;
  }
  enabled_ = true;
  capacity_ = capacity;
  ring_.assign(capacity_, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void TraceRecorder::Disable() {
  enabled_ = false;
  capacity_ = 0;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  current_ = 0;
  next_trace_ = 1;
  next_seq_ = 1;
  origins_.clear();
}

void TraceRecorder::Clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  current_ = 0;
  next_trace_ = 1;
  next_seq_ = 1;
  origins_.clear();
}

uint64_t TraceRecorder::StartTrace(const std::string& origin_node) {
  if (!enabled_) {
    return 0;
  }
  uint64_t id = next_trace_++;
  origins_[id] = origin_node;
  current_ = id;
  TraceEvent event;
  event.trace_id = id;
  event.seq = next_seq_++;
  event.kind = SpanKind::kInject;
  event.subject = origin_node;
  Push(std::move(event));
  return id;
}

void TraceRecorder::Record(SpanKind kind, const std::string& subject,
                           const std::string& detail, double vtime) {
  if (!enabled_) {
    return;
  }
  TraceEvent event;
  event.trace_id = current_;
  event.seq = next_seq_++;
  event.kind = kind;
  event.vtime = vtime;
  event.subject = subject;
  event.detail = detail;
  Push(std::move(event));
}

void TraceRecorder::Push(TraceEvent event) {
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  size_t start = (head_ + capacity_ - size_) % (capacity_ == 0 ? 1 : capacity_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::EventsForTrace(uint64_t trace_id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : Snapshot()) {
    if (event.trace_id == trace_id) {
      out.push_back(event);
    }
  }
  return out;
}

std::string TraceRecorder::OriginOf(uint64_t trace_id) const {
  auto it = origins_.find(trace_id);
  return it == origins_.end() ? "" : it->second;
}

}  // namespace obs
}  // namespace turnstile
