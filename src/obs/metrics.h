// Observability: the process-wide metrics registry (counters, gauges,
// fixed-bucket latency histograms).
//
// Design constraints (ISSUE 1):
//   - lock-free on the hot path: Increment/Set/Observe are relaxed atomic
//     operations on pre-registered instruments; the registry mutex is taken
//     only at registration and snapshot time,
//   - instruments are never deallocated once registered, so callers cache the
//     returned pointer (one hash lookup at setup, zero at use),
//   - exposition in both JSON (src/support/json) and Prometheus text format,
//     so benches can dump machine-readable snapshots alongside figure output.
#ifndef TURNSTILE_SRC_OBS_METRICS_H_
#define TURNSTILE_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace turnstile {
namespace obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depths, map sizes). Signed: levels go down.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Instantaneous floating-point level (ratios, fractions, medians). The
// integer Gauge stays the default; this exists for derived values like
// `dift.overhead_fraction` that lose all meaning when truncated.
class FloatGauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
// implicit +Inf bucket catches the rest. Observe() is a branch-light linear
// scan over a handful of bounds plus two relaxed atomics — no locking.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  // Cumulative count per bound (Prometheus `le` semantics) + the +Inf total.
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> CumulativeCounts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Estimated q-quantile (q in [0,1]) by linear interpolation within the
  // bucket that crosses rank q*count, assuming uniform spread inside the
  // bucket (the Prometheus `histogram_quantile` rule). The first bucket
  // interpolates from 0; a rank landing in +Inf clamps to the largest finite
  // bound. Returns 0 when the histogram is empty and the sample itself when
  // exactly one value was observed (interpolation degenerates there).
  double Quantile(double q) const;
  void Reset();

  // Folds `other`'s observations into this histogram: per-bucket counts, the
  // +Inf bucket, count and sum all add (relaxed atomics on both sides).
  // Requires identical bounds — returns false and merges nothing otherwise.
  // The merge is snapshot-level, not atomic with respect to concurrent
  // Observe() on `other`: callers merge from quiescent or same-thread
  // histograms (the fleet runtime merges per-context histograms only after
  // shard joins or at snapshot time), so hot Observe() paths never lock.
  bool Merge(const Histogram& other);

  // Default latency bounds in seconds: 1us .. 1s, decade-and-a-half steps.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;                  // sorted, immutable after ctor
  std::vector<std::atomic<uint64_t>> buckets_;  // per-bound (non-cumulative)
  std::atomic<uint64_t> inf_bucket_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// The registry. `Metrics::Global()` is the process-wide instance every
// subsystem (flow, interp, dift, analysis, lang) reports into; tests may
// construct private instances.
class Metrics {
 public:
  static Metrics& Global();

  // Returns the named instrument, creating it on first use. Pointers are
  // stable for the registry's lifetime. Name style: "subsystem.metric"
  // (dots are mapped to underscores in Prometheus exposition).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  FloatGauge* GetFloatGauge(const std::string& name);
  // `bounds` applies only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds =
                                                       Histogram::DefaultLatencyBounds());

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  //  p50, p90, p99, buckets: [{le, count}...]}}} — keys in name order,
  //  diffable. Float gauges merge into "gauges".
  Json ToJson() const;
  // Prometheus text exposition format (one HELP-less family per instrument).
  std::string ToPrometheusText() const;

  // Zeroes every registered instrument (pointers stay valid). Test-only.
  void ResetAllForTest();

 private:
  mutable std::mutex mu_;  // guards the maps, never held during updates
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FloatGauge>> float_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Sanitizes a metric-family name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (invalid characters become '_', a leading digit
// gains a '_' prefix). Labels appended by MetricWithLabel are sanitized
// separately — only the part before '{' goes through this.
std::string PrometheusName(const std::string& name);

// Escapes a label value per the Prometheus text exposition rules:
// backslash, double-quote and newline become \\, \" and \n.
std::string PrometheusLabelValue(const std::string& value);

// Builds a registry key carrying one label: `family{label="escaped value"}`.
// JSON snapshots keep the key verbatim; the Prometheus exposition renders it
// as a labeled series of the (sanitized) family. Registered instruments with
// the same family but different label values are distinct series.
std::string MetricWithLabel(const std::string& family, const std::string& label,
                            const std::string& value);

// The repo-wide bench snapshot contract, shared by every bench main: a
// snapshot of the global registry is requested with `--json` (pretty JSON to
// stdout), `--json=PATH` (pure JSON to PATH, keeping stdout for figure
// output), or the TURNSTILE_BENCH_JSON environment variable ("1" = stdout,
// any other non-"0" value = destination path). Returns true when a snapshot
// was requested (even if the file could not be written, which is reported on
// stderr).
bool MaybeWriteMetricsSnapshot(int argc, char** argv);

}  // namespace obs
}  // namespace turnstile

#endif  // TURNSTILE_SRC_OBS_METRICS_H_
