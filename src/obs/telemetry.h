// Observability: the live metrics plane (ISSUE 10).
//
// Two small, independent exporters, both off by default and both configured
// either programmatically or via TURNSTILE_TELEMETRY (read once per process
// with the same precedence as TURNSTILE_PROFILE — see profiler.h):
//
//   - TelemetryServer: a minimal blocking HTTP/1.0 server on 127.0.0.1, one
//     reader thread, serving
//       /metrics        Prometheus text exposition (pluggable provider;
//                       defaults to Metrics::Global()),
//       /healthz        JSON liveness (pluggable provider; the fleet runtime
//                       reports per-shard liveness + mailbox depth),
//       /traces         the latest published fleet Chrome trace,
//       /traces/<id>    one published fleet trace by fleet trace id.
//     TURNSTILE_TELEMETRY=<port> starts it.
//
//   - TelemetrySnapshotWriter: a thread appending one JSON metrics snapshot
//     line per interval to a JSONL file. TURNSTILE_TELEMETRY=<path> (any
//     non-numeric value) starts it.
//
// Concurrency contract (load-bearing — DESIGN.md §15): the server thread may
// only touch thread-safe state. The default /metrics provider reads the
// global Metrics registry (mutex at snapshot, atomics underneath); fleet
// providers read shard-level instruments (atomics) and mailbox depths
// (mutexed). Per-instance TraceRecorder/Profiler/AuditLedger are
// single-threaded by design and are NEVER read while shards run — traces
// appear under /traces only after a quiescent assembly publishes them.
// Providers run under the server's provider mutex, so ClearProviders()
// blocks until any in-flight provider call returns: callers detach before
// tearing down whatever the providers capture.
#ifndef TURNSTILE_SRC_OBS_TELEMETRY_H_
#define TURNSTILE_SRC_OBS_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "src/support/json.h"
#include "src/support/status.h"

namespace turnstile {
namespace obs {

class TelemetryServer {
 public:
  // The process-wide server TURNSTILE_TELEMETRY=<port> starts.
  static TelemetryServer& Global();

  TelemetryServer() = default;
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Binds 127.0.0.1:<port> (0 = ephemeral, see port()) and launches the
  // reader thread. Fails if already running or the bind/listen fails.
  Status Start(int port);
  // Unblocks the reader thread and joins it. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolves an ephemeral bind), 0 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }
  uint64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }

  // Providers replace the defaults (global registry / static ok). Invoked on
  // the server thread under the provider mutex; pass nullptr via
  // ClearProviders() before destroying anything a provider captures.
  void SetMetricsProvider(std::function<std::string()> provider);
  void SetHealthProvider(std::function<Json()> provider);
  void ClearProviders();

  // Publishes an assembled fleet trace under /traces/<fleet_trace_id>; the
  // latest PublishFullTrace() payload is served at /traces. Quiescent-time
  // producers (post-drain assembly) write; the server thread reads.
  void PublishTrace(uint64_t fleet_trace_id, std::string trace_json);
  void PublishFullTrace(std::string trace_json);

 private:
  void Serve();
  void HandleClient(int client_fd);

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> port_{0};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::thread thread_;

  std::mutex provider_mu_;
  std::function<std::string()> metrics_provider_;
  std::function<Json()> health_provider_;

  std::mutex trace_mu_;
  std::map<uint64_t, std::string> traces_;
  std::string full_trace_;
};

// Appends `{"seq":N,"interval_ms":M,"metrics":{...}}` to a JSONL file every
// interval until stopped; Stop() writes one final snapshot so short runs
// still record something.
class TelemetrySnapshotWriter {
 public:
  // The process-wide writer TURNSTILE_TELEMETRY=<path> starts.
  static TelemetrySnapshotWriter& Global();

  TelemetrySnapshotWriter() = default;
  ~TelemetrySnapshotWriter();
  TelemetrySnapshotWriter(const TelemetrySnapshotWriter&) = delete;
  TelemetrySnapshotWriter& operator=(const TelemetrySnapshotWriter&) = delete;

  // `metrics` defaults to the global registry. Fails when already running or
  // the file cannot be opened for append.
  Status Start(const std::string& path, int interval_ms = 1000,
               class Metrics* metrics = nullptr);
  void Stop();  // final snapshot + close; idempotent

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }
  uint64_t snapshots_written() const { return written_.load(std::memory_order_relaxed); }

 private:
  void Run();
  void WriteSnapshot();

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> written_{0};
  std::string path_;
  int interval_ms_ = 1000;
  class Metrics* metrics_ = nullptr;
  std::FILE* file_ = nullptr;
  std::thread thread_;
  std::mutex mu_;  // guards stop_ + file writes
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace obs
}  // namespace turnstile

#endif  // TURNSTILE_SRC_OBS_TELEMETRY_H_
