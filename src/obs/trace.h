// Observability: per-message flow tracing.
//
// Every message injected into a flow gets a trace id. As the message crosses
// FlowEngine wires, interpreter event-loop turns, and DIFT operations, each
// layer records a span against the *current* trace, which the interpreter
// propagates through its task queues (a task fired from within trace T runs
// under trace T). The recorder keeps a bounded ring buffer of events so a
// long-running process never grows without limit.
//
// Cost discipline: the recorder is DISABLED by default. Every hot-path entry
// point (`Record`, `StartTrace`) begins with a single branch on a plain bool
// and returns immediately when disabled — no locking, no allocation, no
// string formatting. Callers therefore do not need their own gating.
#ifndef TURNSTILE_SRC_OBS_TRACE_H_
#define TURNSTILE_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace turnstile {
namespace obs {

enum class SpanKind {
  kInject,        // message enters a flow (subject = node id)
  kNodeEnter,     // a node's "input" handler is about to run
  kNodeSend,      // node.send delivery along a wire (subject = from, detail = to)
  kLoopTurn,      // one event-loop macrotask executed
  kDiftLabel,     // __dift.label (subject = labeller name)
  kDiftBinaryOp,  // __dift.binaryOp (subject = operator)
  kDiftCheck,     // __dift.check (subject = sink name)
  kDiftInvoke,    // __dift.invoke (subject = function name)
  kViolation,     // a policy violation was recorded (subject = sink)
};

const char* SpanKindName(SpanKind kind);

struct TraceEvent {
  uint64_t trace_id = 0;  // 0 = not attributed to any injected message
  uint64_t seq = 0;       // global monotonic event sequence number
  SpanKind kind = SpanKind::kLoopTurn;
  double vtime = 0.0;     // interpreter virtual time at record time
  std::string subject;    // kind-dependent, see SpanKind comments
  std::string detail;

  // "label[Frame] secret->public @0.25 (trace 3)" — diagnostics rendering.
  std::string ToString() const;
};

class TraceRecorder {
 public:
  // The process-wide recorder all subsystems report into.
  static TraceRecorder& Global();

  // Enables recording with a ring buffer of `capacity` events. Idempotent;
  // re-enabling with a different capacity clears recorded events.
  void Enable(size_t capacity = 4096);
  // Disables recording and clears state (events, trace ids).
  void Disable();
  bool enabled() const { return enabled_; }

  // Starts a new trace for a message injected at `origin_node`; records the
  // kInject span, makes the trace current, and returns its id. Returns 0
  // when disabled (trace id 0 is "untraced").
  uint64_t StartTrace(const std::string& origin_node);

  // The trace the executing code is attributed to (0 = none). The
  // interpreter stamps this across task boundaries; see ScopedTrace.
  uint64_t current_trace() const { return enabled_ ? current_ : 0; }
  void SetCurrentTrace(uint64_t id) { current_ = id; }

  // Appends one event to the ring buffer, attributed to the current trace.
  // One branch when disabled.
  void Record(SpanKind kind, const std::string& subject, const std::string& detail = "",
              double vtime = 0.0);

  // Oldest-to-newest snapshot of buffered events (all traces interleaved).
  std::vector<TraceEvent> Snapshot() const;
  // Buffered events of one trace, oldest first.
  //
  // Wrap-around contract: the ring evicts oldest-first across ALL traces, so
  // after `dropped() > 0` a trace's early events (including its kInject) may
  // be gone while its tail survives — EventsForTrace returns whatever is
  // still buffered, possibly empty, never an error. OriginOf is NOT subject
  // to eviction: origins live in a side map keyed by trace id that only
  // Clear()/Disable() reset, so a fully-evicted trace still answers its
  // origin node. Covered by obs_trace_test RingWrapAround tests.
  std::vector<TraceEvent> EventsForTrace(uint64_t trace_id) const;
  // Origin node of a trace ("" only when the id was never started, or after
  // Clear()/Disable(); survives ring eviction — see EventsForTrace).
  std::string OriginOf(uint64_t trace_id) const;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  // Events evicted from the ring buffer so far.
  uint64_t dropped() const { return dropped_; }
  uint64_t traces_started() const { return next_trace_ - 1; }

  // Drops buffered events and trace bookkeeping; keeps enabled/capacity.
  void Clear();

 private:
  void Push(TraceEvent event);

  bool enabled_ = false;
  size_t capacity_ = 0;
  std::vector<TraceEvent> ring_;  // fixed-size once enabled
  size_t head_ = 0;               // next write slot
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  uint64_t next_trace_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t current_ = 0;
  std::unordered_map<uint64_t, std::string> origins_;
};

// RAII guard restoring the recorder's current trace id — used by the
// interpreter around each task so trace context follows the event loop.
class ScopedTrace {
 public:
  ScopedTrace(TraceRecorder& recorder, uint64_t trace_id)
      : recorder_(recorder), previous_(recorder.current_trace()) {
    recorder_.SetCurrentTrace(trace_id);
  }
  ~ScopedTrace() { recorder_.SetCurrentTrace(previous_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceRecorder& recorder_;
  uint64_t previous_;
};

}  // namespace obs
}  // namespace turnstile

#endif  // TURNSTILE_SRC_OBS_TRACE_H_
