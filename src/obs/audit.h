// Observability: the flow-provenance audit ledger (ISSUE 6).
//
// Where the trace recorder (trace.h) keeps a diagnostic ring of *span* events
// and the profiler (profiler.h) answers "where did the time go", the audit
// ledger answers the accountability question of IFC: *what did the monitor
// decide, and why*. It records one structured event for every DIFT-relevant
// decision — source-label attach, label-set merge on propagation,
// invoke-labeller fire, flow check (allowed and denied, with the interned
// label-set handle pair and the rule that decided it), declassification, and
// sink write — each stamped with the message trace id, the flow node the
// message entered at, and the application name.
//
// Storage is a bounded ring (never unbounded, same rule as the recorder)
// with an optional *spill*: when a JSONL spill path is set, events evicted
// from the ring are appended to the file instead of being dropped, and
// FlushSpill() drains the remaining ring at shutdown — so the file ends up
// holding the complete ledger in order. Without a spill path, evicted events
// count as dropped (`audit.dropped_events`).
//
// Tier-identical guarantee: every emit site lives in shared native code
// (DiftTracker, RuleGraph, FlowEngine) that both execution tiers call through
// the same `__dift.*` / `node.send` funnels, so the bytecode VM and the
// tree-walker produce byte-identical canonical ledgers for the same program
// (asserted by vm_differential_test and the corpus round-trip matrix).
//
// Cost discipline (the trace.h contract): DISABLED by default; `Record`
// starts with one branch on a plain bool and returns immediately when
// disabled. Emit sites gate event *construction* on `enabled()` so the
// disabled hot path never allocates or formats anything.
#ifndef TURNSTILE_SRC_OBS_AUDIT_H_
#define TURNSTILE_SRC_OBS_AUDIT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace turnstile {
namespace obs {

class Counter;
class TraceRecorder;

// What kind of DIFT decision an event records.
enum class AuditKind : uint8_t {
  kLabelAttach = 0,  // a labeller attached labels to a value
  kMerge,            // label sets merged during propagation (binaryOp)
  kInvokeLabeller,   // a call-time ($invoke) labeller fired
  kFlowCheck,        // a rule-DAG flow query (check / invoke), with verdict
  kDeclassify,       // a $const labeller re-labelled an already-labelled value
  kSinkWrite,        // data crossed into an I/O sink (unwrap point / terminal)
};
inline constexpr int kAuditKindCount = 6;

const char* AuditKindName(AuditKind kind);

// One ledger entry. Emit sites fill kind / subject / label-set handles /
// verdict; Record() stamps seq, trace id, node and app. Label-set handles
// are LabelSetRefs of the emitting tracker's policy pool (0 = empty set);
// `labels` carries the rendered names so the ledger is readable without the
// pool. No wall or virtual time is stored: the ledger is an order-of-events
// record, and keeping time out of it is what makes the two execution tiers'
// ledgers byte-identical.
struct AuditEvent {
  AuditKind kind = AuditKind::kFlowCheck;
  bool allowed = true;      // kFlowCheck verdict; true for all other kinds
  uint64_t seq = 0;         // ledger-local monotonic sequence (stamped)
  uint64_t trace_id = 0;    // message trace active at record time (stamped)
  uint32_t data = 0;        // LabelSetRef: data/left operand
  uint32_t receiver = 0;    // LabelSetRef: receiver/right operand
  uint32_t out = 0;         // LabelSetRef: attached/merged result
  std::string subject;      // labeller / operator / sink / node name
  std::string labels;       // rendered label names ("{secret} vs {public}")
  std::string rule;         // kFlowCheck: the rule that decided the verdict
  std::string node;         // origin node of the active trace (stamped)
  std::string app;          // application name (stamped)

  // Deterministic single-line rendering used by the differential oracles:
  // "#3 flow_check[svc.send] data=2 recv=1 out=0 deny {secret} vs {public}
  //  rule='no rule allows secret' trace=1 node=inject1 app=camera-motion".
  std::string Canonical() const;
  // One JSON object per line (the spill format).
  std::string ToJsonLine() const;
};

class Metrics;

class AuditLedger {
 public:
  // The process-wide ledger the default RuntimeContext reports into.
  static AuditLedger& Global();

  // Instantiable for per-context isolation: events stamp trace/node from
  // `recorder` and counters register in `metrics`. Null arguments bind to the
  // process-wide singletons (the default-context behavior).
  explicit AuditLedger(TraceRecorder* recorder = nullptr, Metrics* metrics = nullptr);

  // Enables the ledger with a ring of `capacity` events. Co-enables the
  // trace recorder when it is off (trace/node stamping rides on its message
  // context, the same arrangement the profiler uses); Disable() restores the
  // recorder's prior state. Re-enabling clears buffered events.
  void Enable(size_t capacity = kDefaultCapacity);
  // Disables recording; flushes and closes the spill file if one is open.
  void Disable();
  bool enabled() const { return enabled_; }

  // Drops buffered events and resets the sequence counter; keeps
  // enabled/capacity/app/spill.
  void Clear();

  // Application stamp for subsequent events (corpus driver sets this per
  // app). Also binds the app-labelled counter `audit.app_events{app=...}`.
  void set_app(const std::string& app);
  const std::string& app() const { return app_; }

  // Opens `path` for writing as the JSONL spill target. Returns false (and
  // records no spill) when the file cannot be opened.
  bool SetSpillPath(const std::string& path);
  bool has_spill() const { return spill_ != nullptr; }
  // Appends all buffered events to the spill file (oldest first) and clears
  // the ring; no-op without a spill file. Called at process exit by the
  // TURNSTILE_AUDIT env hook, and by Disable().
  void FlushSpill();

  // Appends one event. One branch when disabled. Stamps seq/trace/node/app
  // and bumps the `audit.*` counters.
  void Record(AuditEvent event);

  // Oldest-to-newest snapshot of buffered events.
  std::vector<AuditEvent> Snapshot() const;
  // Canonical() of every buffered event, one per line — the differential
  // oracle's comparison key.
  std::string CanonicalLog() const;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  // Events recorded since Enable()/Clear().
  uint64_t recorded() const { return next_seq_ - 1; }
  // Events evicted without a spill target.
  uint64_t dropped() const { return dropped_; }
  // Events written to the spill file.
  uint64_t spilled() const { return spilled_; }

  static constexpr size_t kDefaultCapacity = 8192;

 private:
  void Push(AuditEvent event);
  void WriteSpillLine(const AuditEvent& event);

  bool enabled_ = false;
  bool disable_recorder_on_disable_ = false;
  size_t capacity_ = 0;
  std::vector<AuditEvent> ring_;  // fixed-size once enabled
  size_t head_ = 0;               // next write slot
  size_t size_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t dropped_ = 0;
  uint64_t spilled_ = 0;
  std::string app_;
  std::FILE* spill_ = nullptr;

  // Observability handles (resolved once; counters exist even while the
  // ledger is disabled so exposition is stable).
  TraceRecorder* recorder_ = nullptr;
  Metrics* metrics_ = nullptr;
  Counter* metric_kind_[kAuditKindCount] = {};
  Counter* metric_flows_allowed_ = nullptr;
  Counter* metric_flows_denied_ = nullptr;
  Counter* metric_dropped_ = nullptr;
  Counter* metric_app_events_ = nullptr;  // audit.app_events{app=...}
};

}  // namespace obs
}  // namespace turnstile

#endif  // TURNSTILE_SRC_OBS_AUDIT_H_
