// Observability: post-drain assembly of per-context trace rings into one
// fleet-wide distributed trace (ISSUE 10).
//
// Each fleet instance records into its own context-private TraceRecorder
// with *local* trace ids (1, 2, 3... per context). The shard runtime binds
// every local trace to the FleetTraceContext of the envelope that started it
// — {fleet_trace_id, parent_span, hop} — where `hop` counts wire crossings
// and `parent_span` is the source shard's local trace id the hop continued
// from. This assembler joins the two: feed it one AddContext() per instance
// (its event snapshot + its bindings) and query the stitched result.
//
// Everything here is quiescent-time data transformation: the caller owns the
// snapshots (taken after Drain()/Stop(); per-context recorders are not
// thread-safe), and the assembler never touches live runtime state.
//
// The Chrome export draws one lane (tid) per *shard* — instances multiplex
// onto their shard's lane, mirroring the threading reality — and a flow
// arrow (ph "s" -> "f") for every wire crossing. Events carry no wall-clock
// time by design (the audit byte-identity gate forbids it), so the export
// lays fleet traces out on a synthetic causal timeline: hops of one fleet
// trace in hop order, events within a hop in ring order.
#ifndef TURNSTILE_SRC_OBS_FLEET_TRACE_H_
#define TURNSTILE_SRC_OBS_FLEET_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/support/json.h"

namespace turnstile {
namespace obs {

// One local trace's place in a fleet trace, recorded by the shard that
// processed the envelope which started it.
struct FleetSpanBinding {
  uint64_t local_trace_id = 0;  // id inside the owning context's recorder
  uint64_t fleet_trace_id = 0;  // fleet-wide id minted at injection
  uint64_t parent_span = 0;     // source-side local trace id (0 = injection root)
  uint32_t hop = 0;             // wire crossings before this span
};

class FleetTraceAssembler {
 public:
  // Registers one instance's ring: `shard` keys the Chrome lane, `lane` is
  // its display name ("shard0"), `source` identifies the instance (the
  // fleet-wide app id, e.g. "camera-motion#0").
  void AddContext(int shard, std::string lane, std::string source,
                  std::vector<TraceEvent> events, std::vector<FleetSpanBinding> bindings);

  // One stitched span of a fleet trace: the events a single local trace
  // recorded on one instance, plus where it sits in the cross-shard chain.
  struct Hop {
    int shard = 0;
    std::string lane;
    std::string source;
    uint32_t hop = 0;
    uint64_t local_trace_id = 0;
    uint64_t parent_span = 0;
    std::vector<TraceEvent> events;  // ring order; may be empty after eviction
  };

  // Distinct fleet trace ids seen across every binding, ascending.
  std::vector<uint64_t> FleetTraceIds() const;
  size_t fleet_trace_count() const { return FleetTraceIds().size(); }
  // The hops of one fleet trace, ordered by (hop, shard, local trace id).
  std::vector<Hop> HopsOf(uint64_t fleet_trace_id) const;
  // Total wire crossings across all fleet traces (bindings with hop > 0).
  uint64_t wire_hops() const;
  size_t context_count() const { return contexts_.size(); }

  // {"traceEvents": [...]}: lane-per-shard "X" events on the synthetic causal
  // timeline plus "s"/"f" flow arrows for wire crossings; loadable in
  // Perfetto / chrome://tracing.
  Json ChromeTraceJson() const;

 private:
  struct Context {
    int shard = 0;
    std::string lane;
    std::string source;
    std::vector<TraceEvent> events;
    std::vector<FleetSpanBinding> bindings;
  };

  std::vector<Context> contexts_;
};

}  // namespace obs
}  // namespace turnstile

#endif  // TURNSTILE_SRC_OBS_FLEET_TRACE_H_
