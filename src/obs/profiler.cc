#include "src/obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>

#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"

namespace turnstile {
namespace obs {

namespace {

constexpr size_t kDroppedIndex = std::numeric_limits<size_t>::max();

const char* SpanCategory(const ProfileSpan& span) {
  return span.monitor ? "monitor" : "app";
}

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* instance = new Profiler();  // never destroyed: hot-path
  return *instance;                            // pointers must stay valid
}

Profiler::Profiler(TraceRecorder* recorder, Metrics* metrics) {
  recorder_ = recorder != nullptr ? recorder : &TraceRecorder::Global();
  metrics_ = metrics != nullptr ? metrics : &Metrics::Global();
}

double Profiler::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void Profiler::Enable(size_t span_capacity) {
  Clear();
  if (!enabled_) {
    if (!recorder_->enabled()) {
      recorder_->Enable();
      disabled_recorder_on_disable_ = true;
    }
  }
  enabled_ = true;
  capacity_ = span_capacity;
  spans_.reserve(std::min<size_t>(span_capacity, 4096));
  epoch_ = std::chrono::steady_clock::now();
  account_mark_s_ = 0.0;
  line_mark_s_ = 0.0;
}

void Profiler::Disable() {
  if (enabled_ && disabled_recorder_on_disable_) {
    recorder_->Disable();
  }
  enabled_ = false;
  disabled_recorder_on_disable_ = false;
  Clear();
}

void Profiler::Clear() {
  spans_.clear();
  next_span_ = 1;
  dropped_ = 0;
  open_.clear();
  roots_.clear();
  account_ = Account::kIdle;
  account_stack_.clear();
  app_s_ = 0.0;
  monitor_s_ = 0.0;
  functions_.clear();
  fn_by_key_.clear();
  fn_by_name_line_.clear();
  frames_.clear();
  vm_depth_ = 0;
  current_line_ = -1;
  vm_s_ = 0.0;
  line_stack_.clear();
  lines_.clear();
  node_histograms_.clear();
  double now = Now();
  account_mark_s_ = now;
  line_mark_s_ = now;
}

// --- split accounting --------------------------------------------------------

void Profiler::AccountFlush() {
  double now = Now();
  double elapsed = now - account_mark_s_;
  account_mark_s_ = now;
  if (elapsed <= 0.0) {
    return;
  }
  switch (account_) {
    case Account::kIdle:
      break;
    case Account::kApp:
      app_s_ += elapsed;
      break;
    case Account::kMonitor:
      monitor_s_ += elapsed;
      break;
  }
}

void Profiler::PushAccount(Account account) {
  AccountFlush();
  account_stack_.push_back(account_);
  account_ = account;
}

void Profiler::PopAccount() {
  AccountFlush();
  if (account_stack_.empty()) {
    account_ = Account::kIdle;
    return;
  }
  account_ = account_stack_.back();
  account_stack_.pop_back();
}

void Profiler::PushMonitor() {
  if (!enabled_) {
    return;
  }
  PushAccount(Account::kMonitor);
}

void Profiler::PushApp() {
  if (!enabled_) {
    return;
  }
  PushAccount(Account::kApp);
}

void Profiler::Pop() {
  if (!enabled_) {
    return;
  }
  PopAccount();
}

OverheadSplit Profiler::split() const {
  OverheadSplit out;
  out.app_s = app_s_;
  out.monitor_s = monitor_s_;
  // Bill the running stretch so mid-flight reads (bench loops) are accurate.
  if (enabled_ && account_ != Account::kIdle) {
    double elapsed = Now() - account_mark_s_;
    if (elapsed > 0.0) {
      (account_ == Account::kApp ? out.app_s : out.monitor_s) += elapsed;
    }
  }
  return out;
}

// --- span tree ---------------------------------------------------------------

uint64_t Profiler::BeginMessage(uint64_t trace_id, const std::string& origin_node) {
  if (!enabled_ || trace_id == 0) {
    return 0;
  }
  ProfileSpan span;
  span.id = next_span_++;
  span.parent = 0;
  span.trace_id = trace_id;
  span.kind = SpanKind::kInject;
  span.monitor = false;
  span.open = true;
  span.start_s = Now();
  span.end_s = span.start_s;  // grows as descendants close
  span.name = "inject:" + origin_node;
  uint64_t id = span.id;
  if (spans_.size() < capacity_) {
    roots_[trace_id] = spans_.size();
    spans_.push_back(std::move(span));
  } else {
    ++dropped_;
  }
  return id;
}

uint64_t Profiler::BeginSpan(SpanKind kind, std::string name, bool monitor, std::string detail) {
  if (!enabled_) {
    return 0;
  }
  ProfileSpan span;
  span.id = next_span_++;
  span.trace_id = recorder_->current_trace();
  span.kind = kind;
  span.monitor = monitor;
  span.open = true;
  span.start_s = Now();
  span.name = std::move(name);
  span.detail = std::move(detail);
  if (!open_.empty()) {
    const OpenSpan& top = open_.back();
    span.parent = top.id;
  } else {
    auto root = roots_.find(span.trace_id);
    span.parent = root != roots_.end() ? spans_[root->second].id : 0;
  }
  OpenSpan entry;
  entry.id = span.id;
  if (spans_.size() < capacity_) {
    entry.index = spans_.size();
    spans_.push_back(std::move(span));
  } else {
    entry.index = kDroppedIndex;
    ++dropped_;
  }
  // Route the span's wall time: __dift/tracker spans to monitor, turn and
  // node spans to app. Node-enter markers are instant; pushing app for them
  // is harmless (they close immediately).
  entry.pushed_state = true;
  PushAccount(monitor ? Account::kMonitor : Account::kApp);
  open_.push_back(entry);
  return entry.id;
}

void Profiler::EndSpan(uint64_t id) {
  if (!enabled_ || id == 0) {
    return;
  }
  // LIFO in the normal case; unwind defensively if a callee leaked opens
  // (abrupt completions that bypassed a scoped close).
  while (!open_.empty()) {
    OpenSpan top = open_.back();
    open_.pop_back();
    double now = Now();
    if (top.index != kDroppedIndex && top.index < spans_.size()) {
      ProfileSpan& span = spans_[top.index];
      span.open = false;
      span.end_s = now;
      if (span.trace_id != 0) {
        CloseMessageRoot(span.trace_id, now);
      }
      // Per-node turn latency: fold closed "node:*" turn spans into a
      // labeled histogram so the metrics snapshot carries percentiles.
      if (span.kind == SpanKind::kLoopTurn && span.name.rfind("node:", 0) == 0) {
        std::string node = span.name.substr(5);
        auto [it, inserted] = node_histograms_.try_emplace(node, nullptr);
        if (inserted) {
          it->second = metrics_->GetHistogram(
              MetricWithLabel("flow.node_turn_seconds", "node", node));
        }
        it->second->Observe(span.duration_s());
      }
    }
    if (top.pushed_state) {
      PopAccount();
    }
    if (top.id == id) {
      return;
    }
  }
}

void Profiler::CloseMessageRoot(uint64_t trace_id, double end_s) {
  auto it = roots_.find(trace_id);
  if (it == roots_.end() || it->second >= spans_.size()) {
    return;
  }
  ProfileSpan& root = spans_[it->second];
  root.end_s = std::max(root.end_s, end_s);
}

// --- function frames ---------------------------------------------------------

uint32_t Profiler::FunctionIndex(const void* key, const std::string& name, int line) {
  auto by_key = fn_by_key_.find(key);
  if (by_key != fn_by_key_.end()) {
    return by_key->second;
  }
  // New pointer: merge with any existing (name, line) profile so re-created
  // function objects (natives registered per interpreter) aggregate.
  std::string merged = name + "@" + std::to_string(line);
  auto [it, inserted] = fn_by_name_line_.try_emplace(merged, 0);
  if (inserted) {
    it->second = static_cast<uint32_t>(functions_.size());
    FunctionProfile profile;
    profile.name = name.empty() ? "<anonymous>" : name;
    profile.line = line;
    profile.monitor = name.rfind("__dift.", 0) == 0 || account_ == Account::kMonitor;
    functions_.push_back(std::move(profile));
  }
  fn_by_key_[key] = it->second;
  return it->second;
}

void Profiler::EnterFrame(const void* key, const std::string& name, int line) {
  if (!enabled_) {
    return;
  }
  Frame frame;
  frame.fn = FunctionIndex(key, name, line);
  frame.start_s = Now();
  frames_.push_back(frame);
}

void Profiler::ExitFrame() {
  if (!enabled_ || frames_.empty()) {
    return;
  }
  Frame frame = frames_.back();
  frames_.pop_back();
  double total = Now() - frame.start_s;
  FunctionProfile& profile = functions_[frame.fn];
  profile.calls += 1;
  profile.total_s += total;
  profile.self_s += std::max(0.0, total - frame.child_s);
  if (!frames_.empty()) {
    frames_.back().child_s += total;
  }
}

// --- VM line clock -----------------------------------------------------------

void Profiler::LineFlush() {
  double now = Now();
  double elapsed = now - line_mark_s_;
  line_mark_s_ = now;
  if (elapsed <= 0.0 || vm_depth_ == 0) {
    return;
  }
  vm_s_ += elapsed;
  if (current_line_ >= 0) {
    LineProfile& line = lines_[current_line_];
    line.line = current_line_;
    line.self_s += elapsed;
  }
}

void Profiler::EnterVm() {
  if (!enabled_) {
    return;
  }
  LineFlush();
  line_stack_.push_back(current_line_);
  current_line_ = -1;
  ++vm_depth_;
}

void Profiler::ExitVm() {
  if (!enabled_) {
    return;
  }
  LineFlush();
  if (vm_depth_ > 0) {
    --vm_depth_;
  }
  if (!line_stack_.empty()) {
    current_line_ = line_stack_.back();
    line_stack_.pop_back();
  } else {
    current_line_ = -1;
  }
}

void Profiler::LineTick(int32_t line) {
  if (!enabled_ || line == current_line_) {
    return;  // the common case: consecutive instructions on one line
  }
  LineFlush();
  if (line != current_line_) {
    lines_[line].ticks += 1;
    lines_[line].line = line;
  }
  current_line_ = line;
}

double Profiler::vm_seconds() const {
  double total = vm_s_;
  if (enabled_ && vm_depth_ > 0) {
    total += Now() - line_mark_s_;
  }
  return total;
}

// --- snapshots ---------------------------------------------------------------

std::vector<ProfileSpan> Profiler::SpanSnapshot() const {
  std::vector<ProfileSpan> out = spans_;
  double now = Now();
  for (ProfileSpan& span : out) {
    if (span.open) {
      span.open = false;
      if (span.kind == SpanKind::kInject) {
        // Message roots track their latest descendant end while open; fall
        // back to "now" only if nothing ran under them yet.
        if (span.end_s <= span.start_s) {
          span.end_s = now;
        }
      } else {
        span.end_s = now;
      }
    }
  }
  return out;
}

std::vector<FunctionProfile> Profiler::FunctionsSnapshot() const {
  std::vector<FunctionProfile> out = functions_;
  std::sort(out.begin(), out.end(), [](const FunctionProfile& a, const FunctionProfile& b) {
    return a.self_s > b.self_s;
  });
  return out;
}

std::vector<LineProfile> Profiler::LinesSnapshot() const {
  std::vector<LineProfile> out;
  out.reserve(lines_.size());
  for (const auto& [line, profile] : lines_) {
    out.push_back(profile);
  }
  std::sort(out.begin(), out.end(),
            [](const LineProfile& a, const LineProfile& b) { return a.line < b.line; });
  return out;
}

Json Profiler::ProfileSummaryJson() const {
  Json out = Json::Object();
  OverheadSplit totals = split();
  Json split_json = Json::Object();
  split_json.Set("app_seconds", Json(totals.app_s));
  split_json.Set("monitor_seconds", Json(totals.monitor_s));
  split_json.Set("overhead_fraction", Json(totals.fraction()));
  out.Set("split", std::move(split_json));

  Json functions = Json::Array();
  for (const FunctionProfile& fn : FunctionsSnapshot()) {
    Json entry = Json::Object();
    entry.Set("name", Json(fn.name));
    entry.Set("line", Json(fn.line));
    entry.Set("monitor", Json(fn.monitor));
    entry.Set("calls", Json(fn.calls));
    entry.Set("total_seconds", Json(fn.total_s));
    entry.Set("self_seconds", Json(fn.self_s));
    functions.Append(std::move(entry));
  }
  out.Set("functions", std::move(functions));

  Json lines = Json::Array();
  for (const LineProfile& line : LinesSnapshot()) {
    Json entry = Json::Object();
    entry.Set("line", Json(static_cast<int64_t>(line.line)));
    entry.Set("ticks", Json(line.ticks));
    entry.Set("self_seconds", Json(line.self_s));
    lines.Append(std::move(entry));
  }
  out.Set("lines", std::move(lines));
  out.Set("vm_seconds", Json(vm_seconds()));
  out.Set("spans_recorded", Json(spans_recorded()));
  out.Set("spans_dropped", Json(spans_dropped()));
  return out;
}

Json Profiler::ChromeTraceJson() const {
  Json events = Json::Array();
  for (const ProfileSpan& span : SpanSnapshot()) {
    Json event = Json::Object();
    event.Set("name", Json(span.name.empty() ? SpanKindName(span.kind) : span.name));
    event.Set("cat", Json(SpanCategory(span)));
    event.Set("ph", Json("X"));  // complete event: ts + dur
    event.Set("ts", Json(span.start_s * 1e6));
    event.Set("dur", Json(std::max(0.0, span.duration_s()) * 1e6));
    event.Set("pid", Json(1));
    // One lane per message: Perfetto groups events by (pid, tid).
    event.Set("tid", Json(static_cast<int64_t>(span.trace_id)));
    Json args = Json::Object();
    args.Set("span", Json(span.id));
    args.Set("parent", Json(span.parent));
    args.Set("kind", Json(SpanKindName(span.kind)));
    if (!span.detail.empty()) {
      args.Set("detail", Json(span.detail));
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  Json out = Json::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", Json("ms"));
  // Non-standard key; trace viewers ignore unknown top-level fields.
  out.Set("turnstileProfile", ProfileSummaryJson());
  return out;
}

std::string Profiler::CollapsedStacks() const {
  std::vector<ProfileSpan> spans = SpanSnapshot();
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    by_id[spans[i].id] = i;
  }
  // Self time = duration minus the duration of direct children.
  std::vector<double> child_s(spans.size(), 0.0);
  for (const ProfileSpan& span : spans) {
    auto parent = by_id.find(span.parent);
    if (span.parent != 0 && parent != by_id.end()) {
      child_s[parent->second] += std::max(0.0, span.duration_s());
    }
  }
  // Aggregate identical stacks (flamegraph.pl folds duplicates anyway, but a
  // pre-aggregated file is smaller and deterministic).
  std::map<std::string, uint64_t> folded;
  for (size_t i = 0; i < spans.size(); ++i) {
    double self = std::max(0.0, spans[i].duration_s()) - child_s[i];
    auto usec = static_cast<uint64_t>(std::max(0.0, self) * 1e6);
    if (usec == 0) {
      continue;
    }
    // Walk to the root, then reverse into "root;...;leaf".
    std::vector<const std::string*> path;
    size_t cursor = i;
    size_t guard = 0;
    while (guard++ <= spans.size()) {
      const ProfileSpan& span = spans[cursor];
      path.push_back(&span.name);
      auto parent = by_id.find(span.parent);
      if (span.parent == 0 || parent == by_id.end()) {
        break;
      }
      cursor = parent->second;
    }
    std::string stack;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (!stack.empty()) {
        stack += ';';
      }
      const std::string& frame = **it;
      // The format reserves ';' (separator) and ' ' (value delimiter).
      for (char c : frame) {
        stack += (c == ';' || c == ' ') ? '_' : c;
      }
    }
    folded[stack] += usec;
  }
  std::string out;
  for (const auto& [stack, usec] : folded) {
    out += stack + " " + std::to_string(usec) + "\n";
  }
  return out;
}

// --- environment configuration -----------------------------------------------

namespace {

// Set by ApplyEnvObsConfig when TURNSTILE_PROFILE is present; written by the
// atexit hook after main() returns so the full run is captured.
std::string* g_profile_path = nullptr;

void WriteProfileAtExit() {
  if (g_profile_path == nullptr || g_profile_path->empty()) {
    return;
  }
  Profiler& profiler = Profiler::Global();
  if (!profiler.enabled()) {
    return;  // something disabled it programmatically; respect that
  }
  std::string json = profiler.ChromeTraceJson().Dump(/*pretty=*/false);
  std::FILE* file = std::fopen(g_profile_path->c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "profiler: cannot open '%s' for writing\n", g_profile_path->c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::fprintf(stderr, "profiler: Chrome trace written to %s\n", g_profile_path->c_str());
}

// TURNSTILE_AUDIT's spill hook: drain whatever is still buffered in the
// ledger's ring into the JSONL file after main() returns.
void WriteAuditAtExit() {
  AuditLedger& ledger = AuditLedger::Global();
  if (!ledger.enabled() || !ledger.has_spill()) {
    return;  // something disabled it programmatically; respect that
  }
  ledger.FlushSpill();
}

// TURNSTILE_TELEMETRY's shutdown hook: stop whichever exporter the env var
// started so the reader thread joins and the snapshot file gets its final
// line before the process exits.
void StopTelemetryAtExit() {
  TelemetryServer::Global().Stop();
  TelemetrySnapshotWriter::Global().Stop();
}

}  // namespace

namespace {
// Once-per-process latch. Interpreters for isolated contexts are constructed
// on worker threads, so the latch must be race-free: the fast path is one
// acquire load; losers of the mutex race see the flag set and return without
// re-reading the environment.
std::atomic<bool> g_env_config_applied{false};
std::mutex g_env_config_mu;

void ApplyEnvObsConfigLocked();
}  // namespace

void ReapplyEnvObsConfigForTest() {
  std::lock_guard<std::mutex> lock(g_env_config_mu);
  ApplyEnvObsConfigLocked();
  g_env_config_applied.store(true, std::memory_order_release);
}

void ApplyEnvObsConfig() {
  if (g_env_config_applied.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_env_config_mu);
  if (g_env_config_applied.load(std::memory_order_relaxed)) {
    return;
  }
  ApplyEnvObsConfigLocked();
  g_env_config_applied.store(true, std::memory_order_release);
}

namespace {
void ApplyEnvObsConfigLocked() {
  const char* trace = std::getenv("TURNSTILE_TRACE");
  if (trace != nullptr && trace[0] != '\0' && std::string(trace) != "0") {
    char* end = nullptr;
    long capacity = std::strtol(trace, &end, 10);
    if (end == nullptr || *end != '\0' || capacity <= 1) {
      TraceRecorder::Global().Enable();  // "1" or non-numeric: default size
    } else {
      TraceRecorder::Global().Enable(static_cast<size_t>(capacity));
    }
  }
  const char* profile = std::getenv("TURNSTILE_PROFILE");
  if (profile != nullptr && profile[0] != '\0') {
    Profiler::Global().Enable();
    g_profile_path = new std::string(profile);
    std::atexit(WriteProfileAtExit);
  }
  // TURNSTILE_AUDIT=<path|capacity>: a number sizes the ring (ring only, no
  // spill); anything else is a JSONL spill path written out at process exit.
  // Same precedence as TURNSTILE_PROFILE: read once here, programmatic
  // Enable/Disable calls run later and override.
  const char* audit = std::getenv("TURNSTILE_AUDIT");
  if (audit != nullptr && audit[0] != '\0' && std::string(audit) != "0") {
    char* end = nullptr;
    long capacity = std::strtol(audit, &end, 10);
    if (end != nullptr && *end == '\0' && capacity >= 1) {
      AuditLedger::Global().Enable(capacity == 1 ? AuditLedger::kDefaultCapacity
                                                 : static_cast<size_t>(capacity));
    } else {
      AuditLedger::Global().Enable();
      if (AuditLedger::Global().SetSpillPath(audit)) {
        std::atexit(WriteAuditAtExit);
      }
    }
  }
  // TURNSTILE_TELEMETRY=<port|path>: a number in [1,65535] starts the HTTP
  // server on 127.0.0.1:<port>; anything else is a JSONL path for the
  // periodic snapshot writer. Same once-at-startup precedence as
  // TURNSTILE_PROFILE: read once here, programmatic Start/Stop overrides.
  const char* telemetry = std::getenv("TURNSTILE_TELEMETRY");
  if (telemetry != nullptr && telemetry[0] != '\0' && std::string(telemetry) != "0") {
    char* end = nullptr;
    long port = std::strtol(telemetry, &end, 10);
    if (end != nullptr && *end == '\0' && port >= 1 && port <= 65535) {
      Status status = TelemetryServer::Global().Start(static_cast<int>(port));
      if (status.ok()) {
        std::fprintf(stderr, "telemetry: serving /metrics /healthz /traces on 127.0.0.1:%d\n",
                     TelemetryServer::Global().port());
        std::atexit(StopTelemetryAtExit);
      } else {
        std::fprintf(stderr, "telemetry: %s\n", status.message().c_str());
      }
    } else {
      Status status = TelemetrySnapshotWriter::Global().Start(telemetry);
      if (status.ok()) {
        std::fprintf(stderr, "telemetry: appending metric snapshots to %s\n", telemetry);
        std::atexit(StopTelemetryAtExit);
      } else {
        std::fprintf(stderr, "telemetry: %s\n", status.message().c_str());
      }
    }
  }
}
}  // namespace

}  // namespace obs
}  // namespace turnstile
