// Observability: the hierarchical span profiler (ISSUE 5).
//
// Builds on the flat trace recorder (trace.h): where the recorder keeps an
// unstructured ring of point events, the profiler records *spans* — intervals
// with a parent id, wall-clock start/end and a duration — forming one tree
// per injected message:
//
//   inject (root, one per StartTrace)
//     └── loop turn (one per macrotask executed under that trace)
//           ├── node enter           (flow node "input" handler starts)
//           ├── __dift.* op          (label / binaryOp / check / invoke)
//           └── ...
//
// Alongside the span tree it runs a cheap instrumenting profiler:
//   - per-function self/total wall time via frame enter/exit hooks in
//     Interpreter::CallFunction (covering natives and both execution tiers),
//   - per-source-line self time via the bytecode tier's line clock
//     (Chunk::lines maps every instruction to a 1-based source line; the VM
//     ticks the clock whenever the current line changes),
//   - a monitor-vs-app wall-time split: time inside `__dift.*` spans and
//     tracker-internal work counts as *monitor* time, time inside event-loop
//     turns counts as *app* time, and the tracker re-enters app accounting
//     around the user function an `invoke` dispatches to. Frames entered
//     while monitor accounting is active (labeller functions compiled from
//     the policy) are tagged monitor too.
//
// Exporters: Chrome trace-event JSON (loads in Perfetto / chrome://tracing),
// collapsed-stack text (flamegraph.pl / speedscope), and a profile summary
// (functions, lines, split) embedded in the Chrome trace file.
//
// Cost discipline (same contract as TraceRecorder): DISABLED by default;
// every hot-path entry point starts with one branch on a plain bool and
// returns immediately when disabled — no clock reads, no allocation. Each
// profiler instance is confined to its RuntimeContext's thread (app instances
// are single-threaded): no locking.
#ifndef TURNSTILE_SRC_OBS_PROFILER_H_
#define TURNSTILE_SRC_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/trace.h"
#include "src/support/json.h"

namespace turnstile {
namespace obs {

class Histogram;

// One node of a per-message span tree.
struct ProfileSpan {
  uint64_t id = 0;        // 1-based; 0 = "no span"
  uint64_t parent = 0;    // enclosing span id (0 = tree root)
  uint64_t trace_id = 0;  // trace recorder id of the owning message (0 = none)
  SpanKind kind = SpanKind::kLoopTurn;
  bool monitor = false;   // monitor (DIFT/tracker) time vs app time
  bool open = false;      // still running at snapshot time
  double start_s = 0.0;   // seconds since Enable()
  double end_s = 0.0;     // valid when !open (snapshots close open spans)
  std::string name;
  std::string detail;

  double duration_s() const { return end_s - start_s; }
};

// Aggregated per-function instrumentation profile.
struct FunctionProfile {
  std::string name;       // "<anonymous>" when the function has no name
  int line = 0;           // declaration line (0 = native / unknown)
  bool monitor = false;   // __dift.* frame or entered under monitor accounting
  uint64_t calls = 0;
  double total_s = 0.0;   // includes time in callees
  double self_s = 0.0;    // excludes time in profiled callees
};

// Aggregated per-source-line self time (bytecode tier line clock).
struct LineProfile {
  int32_t line = 0;       // 1-based source line; 0 = instruction had no line
  uint64_t ticks = 0;     // times the line became current
  double self_s = 0.0;
};

// Monitor/app wall-time split totals.
struct OverheadSplit {
  double app_s = 0.0;
  double monitor_s = 0.0;
  // monitor / (monitor + app); 0 when nothing was accounted.
  double fraction() const {
    double total = app_s + monitor_s;
    return total > 0.0 ? monitor_s / total : 0.0;
  }
};

class Metrics;

class Profiler {
 public:
  // The process-wide profiler the default RuntimeContext reports into.
  static Profiler& Global();

  // Instantiable for per-context isolation: spans stamp trace ids from
  // `recorder`, per-node turn histograms register in `metrics`. Null
  // arguments bind to the process-wide singletons (default-context behavior).
  explicit Profiler(TraceRecorder* recorder = nullptr, Metrics* metrics = nullptr);

  // Enables profiling, keeping at most `span_capacity` spans (further spans
  // are counted as dropped; aggregates keep accumulating). Also enables the
  // trace recorder when it is off — span trees key off its trace ids — and
  // remembers to turn it back off on Disable(). Idempotent re-enable clears
  // recorded data.
  void Enable(size_t span_capacity = 1 << 15);
  // Disables profiling and clears all recorded data.
  void Disable();
  bool enabled() const { return enabled_; }
  // Drops recorded data, keeps enabled state and capacity.
  void Clear();

  // --- span tree -------------------------------------------------------------

  // Opens the root span of a message tree (kind kInject) for `trace_id` and
  // returns its id. The root stays open while the message's tasks run; its
  // end time tracks the latest descendant end. No-op (returns 0) when
  // disabled or trace_id == 0.
  uint64_t BeginMessage(uint64_t trace_id, const std::string& origin_node);

  // Opens a span under the innermost open span (or under the message root of
  // the recorder's current trace when the open stack is empty). `monitor`
  // routes the span's wall time to monitor accounting; kLoopTurn/kNodeEnter
  // spans route to app accounting. Returns 0 when disabled.
  uint64_t BeginSpan(SpanKind kind, std::string name, bool monitor, std::string detail = "");
  // Closes the span (LIFO; defensively unwinds to `id` if callees leaked).
  void EndSpan(uint64_t id);

  // --- monitor/app split -----------------------------------------------------

  // Explicit accounting-state switches for code that has no span of its own:
  // the tracker wraps the app function an invoke dispatches to in
  // PushApp/PopApp so the callee's time is not billed to the monitor.
  void PushMonitor();
  void PushApp();
  void Pop();

  OverheadSplit split() const;

  // --- frame hooks (Interpreter::CallFunction, both tiers + natives) --------

  // `key` is the function's identity (stable while the function lives);
  // frames merge by (name, line) so re-created natives aggregate.
  void EnterFrame(const void* key, const std::string& name, int line);
  void ExitFrame();

  // --- VM line clock (bytecode dispatch loop) -------------------------------

  // Brackets one Vm::Execute activation: saves the caller's current line so
  // nested activations attribute to their own lines, not the call site's.
  void EnterVm();
  void ExitVm();
  // The executing instruction's source line changed.
  void LineTick(int32_t line);
  // Wall time spent inside VM activations (the denominator for line coverage).
  double vm_seconds() const;

  // --- snapshots and exporters ----------------------------------------------

  // Spans oldest-first; open spans are reported closed at "now" (message
  // roots at their latest descendant end).
  std::vector<ProfileSpan> SpanSnapshot() const;
  std::vector<FunctionProfile> FunctionsSnapshot() const;  // by self_s, desc
  std::vector<LineProfile> LinesSnapshot() const;          // by line
  uint64_t spans_recorded() const { return next_span_ - 1; }
  uint64_t spans_dropped() const { return dropped_; }

  // {"traceEvents":[...], "displayTimeUnit":"ms", "turnstileProfile":{...}}.
  // One "X" (complete) event per span; tid = trace id, so Perfetto renders
  // one lane per message. The extra turnstileProfile key (ignored by trace
  // viewers) carries the function/line/split summary.
  Json ChromeTraceJson() const;
  // flamegraph.pl / speedscope collapsed format: "root;child;leaf <usecs>"
  // per line, value = span self time in integer microseconds.
  std::string CollapsedStacks() const;
  // The turnstileProfile summary on its own: {split, functions, lines}.
  Json ProfileSummaryJson() const;

 private:
  struct OpenSpan {
    uint64_t id = 0;
    size_t index = 0;       // into spans_ (SIZE_MAX = dropped, not stored)
    bool pushed_state = false;
  };
  struct Frame {
    uint32_t fn = 0;        // into functions_
    double start_s = 0.0;
    double child_s = 0.0;   // total time of directly nested frames
  };
  enum class Account : uint8_t { kIdle, kApp, kMonitor };

  double Now() const;
  void AccountFlush();      // bill elapsed time to the current account
  void PushAccount(Account account);
  void PopAccount();
  void LineFlush();
  void CloseMessageRoot(uint64_t trace_id, double end_s);
  uint32_t FunctionIndex(const void* key, const std::string& name, int line);

  TraceRecorder* recorder_ = nullptr;
  Metrics* metrics_ = nullptr;
  bool enabled_ = false;
  bool disabled_recorder_on_disable_ = false;
  size_t capacity_ = 0;
  std::chrono::steady_clock::time_point epoch_;

  std::vector<ProfileSpan> spans_;
  uint64_t next_span_ = 1;
  uint64_t dropped_ = 0;
  std::vector<OpenSpan> open_;
  std::unordered_map<uint64_t, size_t> roots_;  // trace id -> spans_ index

  // Split accounting.
  Account account_ = Account::kIdle;
  std::vector<Account> account_stack_;
  double account_mark_s_ = 0.0;
  double app_s_ = 0.0;
  double monitor_s_ = 0.0;

  // Function frames.
  std::vector<FunctionProfile> functions_;
  std::unordered_map<const void*, uint32_t> fn_by_key_;
  std::unordered_map<std::string, uint32_t> fn_by_name_line_;
  std::vector<Frame> frames_;

  // VM line clock.
  int vm_depth_ = 0;
  int32_t current_line_ = -1;          // -1 = no line current
  double line_mark_s_ = 0.0;
  double vm_s_ = 0.0;
  std::vector<int32_t> line_stack_;    // caller lines across nested activations
  std::unordered_map<int32_t, LineProfile> lines_;

  // Per-node turn-latency histograms, resolved lazily (profiling-only path).
  std::unordered_map<std::string, Histogram*> node_histograms_;
};

// RAII span. Default-constructed = inactive; move-assign from a temporary to
// open conditionally (callers gate name construction on profiler->enabled()).
class ScopedProfileSpan {
 public:
  ScopedProfileSpan() = default;
  ScopedProfileSpan(Profiler* profiler, SpanKind kind, std::string name, bool monitor,
                    std::string detail = "") {
    if (profiler != nullptr && profiler->enabled()) {
      profiler_ = profiler;
      id_ = profiler->BeginSpan(kind, std::move(name), monitor, std::move(detail));
    }
  }
  ~ScopedProfileSpan() { Reset(); }
  ScopedProfileSpan(ScopedProfileSpan&& other) noexcept
      : profiler_(other.profiler_), id_(other.id_) {
    other.profiler_ = nullptr;
    other.id_ = 0;
  }
  ScopedProfileSpan& operator=(ScopedProfileSpan&& other) noexcept {
    if (this != &other) {
      Reset();
      profiler_ = other.profiler_;
      id_ = other.id_;
      other.profiler_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedProfileSpan(const ScopedProfileSpan&) = delete;
  ScopedProfileSpan& operator=(const ScopedProfileSpan&) = delete;

 private:
  void Reset() {
    if (profiler_ != nullptr) {
      profiler_->EndSpan(id_);
      profiler_ = nullptr;
      id_ = 0;
    }
  }
  Profiler* profiler_ = nullptr;
  uint64_t id_ = 0;
};

// RAII app-accounting override (the tracker's invoke-callee window).
class ScopedAppAccounting {
 public:
  explicit ScopedAppAccounting(Profiler* profiler) {
    if (profiler != nullptr && profiler->enabled()) {
      profiler_ = profiler;
      profiler_->PushApp();
    }
  }
  ~ScopedAppAccounting() { End(); }
  // Closes the window early (subsequent work bills to the enclosing state);
  // the destructor then does nothing.
  void End() {
    if (profiler_ != nullptr) {
      profiler_->Pop();
      profiler_ = nullptr;
    }
  }
  ScopedAppAccounting(const ScopedAppAccounting&) = delete;
  ScopedAppAccounting& operator=(const ScopedAppAccounting&) = delete;

 private:
  Profiler* profiler_ = nullptr;
};

// RAII monitor-accounting window for the fused DIFT opcodes: bills the op's
// wall time to the monitor bucket (so dift.overhead_fraction still attributes
// it) without constructing a heap-named span per operation.
class ScopedMonitorAccounting {
 public:
  explicit ScopedMonitorAccounting(Profiler* profiler) {
    if (profiler != nullptr && profiler->enabled()) {
      profiler_ = profiler;
      profiler_->PushMonitor();
    }
  }
  ~ScopedMonitorAccounting() {
    if (profiler_ != nullptr) {
      profiler_->Pop();
    }
  }
  ScopedMonitorAccounting(const ScopedMonitorAccounting&) = delete;
  ScopedMonitorAccounting& operator=(const ScopedMonitorAccounting&) = delete;

 private:
  Profiler* profiler_ = nullptr;
};

// RAII frame hook used by Interpreter::CallFunction. Default-constructed =
// inactive; call Begin() behind an enabled() check so the disabled path pays
// neither argument evaluation nor the constructor's own branch.
class ScopedProfileFrame {
 public:
  ScopedProfileFrame() = default;
  ScopedProfileFrame(Profiler* profiler, const void* key, const std::string& name, int line) {
    if (profiler != nullptr && profiler->enabled()) {
      Begin(profiler, key, name, line);
    }
  }
  void Begin(Profiler* profiler, const void* key, const std::string& name, int line) {
    profiler_ = profiler;
    profiler_->EnterFrame(key, name, line);
  }
  ~ScopedProfileFrame() {
    if (profiler_ != nullptr) {
      profiler_->ExitFrame();
    }
  }
  ScopedProfileFrame(const ScopedProfileFrame&) = delete;
  ScopedProfileFrame& operator=(const ScopedProfileFrame&) = delete;

 private:
  Profiler* profiler_ = nullptr;
};

// RAII VM-activation bracket used by Vm::Execute.
class ScopedVmActivation {
 public:
  explicit ScopedVmActivation(Profiler* profiler) : profiler_(profiler) {
    if (profiler_ != nullptr) {
      profiler_->EnterVm();
    }
  }
  ~ScopedVmActivation() {
    if (profiler_ != nullptr) {
      profiler_->ExitVm();
    }
  }
  ScopedVmActivation(const ScopedVmActivation&) = delete;
  ScopedVmActivation& operator=(const ScopedVmActivation&) = delete;

 private:
  Profiler* profiler_ = nullptr;
};

// Applies the observability environment variables once per process (called
// from the Interpreter constructor so any binary honours them):
//   TURNSTILE_TRACE=<capacity>  enable the trace recorder ("1"/non-numeric
//                               values use the default capacity; "0" = off)
//   TURNSTILE_PROFILE=<path>    enable the profiler and write the Chrome
//                               trace JSON to <path> at process exit
//   TURNSTILE_AUDIT=<path|capacity>
//                               enable the audit ledger (audit.h); a number
//                               sizes the event ring ("1" = default size,
//                               "0" = off), any other value is a JSONL spill
//                               path drained at process exit
// Programmatic Enable()/Disable() calls and driver flags run later and
// therefore override the environment.
void ApplyEnvObsConfig();

// Test-only: clears the once-per-process latch and re-reads the environment,
// so env-var tests work even after an interpreter has been constructed.
void ReapplyEnvObsConfigForTest();

}  // namespace obs
}  // namespace turnstile

#endif  // TURNSTILE_SRC_OBS_PROFILER_H_
