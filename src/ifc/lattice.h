// The privacy-rule DAG (§4.3): nodes are labels, a directed edge A → B means
// "A may flow to B" (B is at least as private as A). Flow queries walk the
// DAG; the first query for a pair costs O(V+E) and the result is cached so
// subsequent queries are O(1), exactly as the paper describes.
#ifndef TURNSTILE_SRC_IFC_LATTICE_H_
#define TURNSTILE_SRC_IFC_LATTICE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ifc/label.h"
#include "src/ifc/labelset_pool.h"
#include "src/support/status.h"

namespace turnstile {

class RuleGraph {
 public:
  explicit RuleGraph(LabelSpace* space) : space_(space) {}

  // Adds the rule `from -> to`. Invalidates the reachability cache.
  void AddRule(const std::string& from, const std::string& to);

  // Parses a chain rule string "A -> B -> C" into pairwise edges.
  Status AddRuleChain(const std::string& chain);

  // Returns an error naming a label on a cycle if the graph is cyclic
  // (an invalid policy per §4.3).
  Status Validate() const;

  // True when label `from` may flow to label `to` (reflexive + path).
  bool CanFlowLabel(LabelId from, LabelId to) const;

  // Compound-label flow check: every label of `data` must be allowed to flow
  // to at least one label of `receiver`. With the subset rule X ⊑ Y iff
  // X ⊆ Y as a special case (identity paths), this extends Denning's model
  // with the DAG hierarchy. An empty `data` set always flows; a non-empty
  // `data` set never flows into an empty `receiver` set.
  bool CanFlowSet(const LabelSet& data, const LabelSet& receiver) const;

  // Interned-set variant: the whole query is memoized per (data, receiver)
  // handle pair, so repeated checks of the same compound flow are one flat
  // lookup. The memo (like the pairwise reachability cache) is invalidated
  // whenever the rule graph mutates; interned sets themselves are immutable,
  // so handles stay valid across mutation.
  bool CanFlowSet(LabelSetRef data, LabelSetRef receiver, const LabelSetPool& pool) const;

  // As above, and additionally reports *which rule decided the verdict* for
  // the audit ledger: `*rule_out` is pointed at a string owned by the graph
  // (stable until the next AddRule) — "empty-data" / "empty-receiver" for the
  // trivial cases, "subset" for the X ⊆ Y fast path, one granting edge per
  // data label ("secret -> archive, id -> id") when the DAG walk allows the
  // flow, or "no rule allows '<label>'" naming the first data label with no
  // path into the receiver set when it denies. The explanation is memoized
  // together with the verdict, so explained and plain queries share one
  // cache entry. `rule_out` may be null.
  bool CanFlowSetExplained(LabelSetRef data, LabelSetRef receiver, const LabelSetPool& pool,
                           const std::string** rule_out) const;

  size_t edge_count() const { return edge_total_; }
  size_t cache_size() const { return reach_cache_.size(); }
  size_t set_cache_size() const { return set_cache_.size(); }
  const std::vector<LabelId>& successors(LabelId id) const;
  LabelSpace* space() { return space_; }

 private:
  LabelSpace* space_;
  std::unordered_map<LabelId, std::vector<LabelId>> edges_;
  size_t edge_total_ = 0;
  // (from << 16 | to) -> reachable. Mutable: queries are logically const.
  mutable std::unordered_map<uint32_t, bool> reach_cache_;
  // Memoized verdict + explanation for the interned-set overload, keyed by
  // (data ref << 32 | receiver ref). The rule string is built once per pair
  // at cache miss; plain (unexplained) queries read only `allowed`.
  struct SetDecision {
    bool allowed;
    std::string rule;
  };
  mutable std::unordered_map<uint64_t, SetDecision> set_cache_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_IFC_LATTICE_H_
