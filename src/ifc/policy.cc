#include "src/ifc/policy.h"

namespace turnstile {

Result<std::shared_ptr<LabellerSpec>> LabellerSpec::FromJson(const Json& json) {
  auto spec = std::make_shared<LabellerSpec>();
  if (json.is_string()) {
    // Shorthand: "L" means {"$const": "L"}.
    spec->kind = Kind::kConst;
    spec->const_labels.push_back(json.string_value());
    return spec;
  }
  if (!json.is_object()) {
    return PolicyError("labeller spec must be an object or a label string");
  }
  if (json.Has("$fn")) {
    spec->kind = Kind::kFn;
    if (!json["$fn"].is_string()) {
      return PolicyError("$fn must be MiniScript source text");
    }
    spec->fn_source = json["$fn"].string_value();
    return spec;
  }
  if (json.Has("$invoke")) {
    spec->kind = Kind::kInvoke;
    if (!json["$invoke"].is_string()) {
      return PolicyError("$invoke must be MiniScript source text");
    }
    spec->fn_source = json["$invoke"].string_value();
    return spec;
  }
  if (json.Has("$const")) {
    spec->kind = Kind::kConst;
    const Json& labels = json["$const"];
    if (labels.is_string()) {
      spec->const_labels.push_back(labels.string_value());
    } else if (labels.is_array()) {
      for (const Json& item : labels.array_items()) {
        if (!item.is_string()) {
          return PolicyError("$const entries must be label names");
        }
        spec->const_labels.push_back(item.string_value());
      }
    } else {
      return PolicyError("$const must be a label name or a list of names");
    }
    return spec;
  }
  if (json.Has("$map")) {
    spec->kind = Kind::kMap;
    TURNSTILE_ASSIGN_OR_RETURN(element, LabellerSpec::FromJson(json["$map"]));
    spec->element = std::move(element);
    return spec;
  }
  // Plain object: property traversal.
  spec->kind = Kind::kObject;
  for (const auto& [key, value] : json.object_items()) {
    TURNSTILE_ASSIGN_OR_RETURN(field, LabellerSpec::FromJson(value));
    spec->fields.emplace_back(key, std::move(field));
  }
  if (spec->fields.empty()) {
    return PolicyError("empty labeller spec");
  }
  return spec;
}

Result<std::unique_ptr<Policy>> Policy::FromJson(const Json& json) {
  if (!json.is_object()) {
    return PolicyError("policy root must be an object");
  }
  auto policy = std::make_unique<Policy>();

  const Json& labellers = json["labellers"];
  if (labellers.is_object()) {
    for (const auto& [name, spec_json] : labellers.object_items()) {
      TURNSTILE_ASSIGN_OR_RETURN(spec, LabellerSpec::FromJson(spec_json));
      policy->labellers_[name] = std::move(spec);
    }
  }

  const Json& rules = json["rules"];
  if (rules.is_array()) {
    for (const Json& rule : rules.array_items()) {
      if (!rule.is_string()) {
        return PolicyError("rules must be strings like \"A -> B\"");
      }
      TURNSTILE_RETURN_IF_ERROR(policy->rules_.AddRuleChain(rule.string_value()));
    }
  }
  TURNSTILE_RETURN_IF_ERROR(policy->rules_.Validate());

  const Json& injections = json["injections"];
  if (injections.is_array()) {
    for (const Json& item : injections.array_items()) {
      if (!item.is_object()) {
        return PolicyError("injections must be objects");
      }
      Injection injection;
      injection.file = item.GetString("file");
      injection.line = static_cast<int>(item.GetNumber("line"));
      injection.object = item.GetString("object");
      injection.labeller = item.GetString("labeller");
      if (injection.labeller.empty() || injection.object.empty()) {
        return PolicyError("injection needs 'object' and 'labeller'");
      }
      if (policy->labellers_.count(injection.labeller) == 0) {
        return PolicyError("injection references unknown labeller '" + injection.labeller +
                           "'");
      }
      policy->injections_.push_back(std::move(injection));
    }
  }
  return policy;
}

Result<std::unique_ptr<Policy>> Policy::FromJsonText(const std::string& text) {
  TURNSTILE_ASSIGN_OR_RETURN(json, Json::Parse(text));
  return FromJson(json);
}

const LabellerSpec* Policy::FindLabeller(const std::string& name) const {
  auto it = labellers_.find(name);
  return it == labellers_.end() ? nullptr : it->second.get();
}

LabelSet Policy::MakeLabelSet(const std::vector<std::string>& names) {
  LabelSet out;
  for (const std::string& name : names) {
    out.Insert(space_.Intern(name));
  }
  return out;
}

void Policy::AddLabeller(const std::string& name, std::shared_ptr<LabellerSpec> spec) {
  labellers_[name] = std::move(spec);
}

void Policy::AddInjection(Injection injection) {
  injections_.push_back(std::move(injection));
}

}  // namespace turnstile
