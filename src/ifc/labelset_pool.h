// Hash-consed (interned) label sets.
//
// Every distinct sorted label-id set is canonicalized exactly once per policy
// and identified by a dense 32-bit handle (LabelSetRef). Handle 0 is always
// the empty set. Because canonicalization makes set equality pointer (handle)
// equality, the per-op DIFT hot path — Contains / IsSubsetOf / Union /
// rule-DAG flow checks — degrades from O(|set|) vector merges with heap
// allocation to register compares and small flat-cache lookups:
//
//   - sets whose ids are all < 64 additionally carry an inline 64-bit bitmask,
//     so the common case of Contains/IsSubsetOf/Union is one or two ALU ops;
//   - Union(ref, ref) is memoized in a flat cache keyed by the handle pair
//     (set contents are immutable once interned, so the memo never needs
//     invalidation — the label space only grows);
//   - ToString renderings are memoized per handle (label names are stable
//     once interned), which lets tracing and violation reporting reuse one
//     canonical string instead of re-formatting per event.
#ifndef TURNSTILE_SRC_IFC_LABELSET_POOL_H_
#define TURNSTILE_SRC_IFC_LABELSET_POOL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ifc/label.h"

namespace turnstile {

// Dense handle into a LabelSetPool. 0 = the empty set.
using LabelSetRef = uint32_t;
inline constexpr LabelSetRef kEmptyLabelSetRef = 0;

class LabelSetPool {
 public:
  // `space` provides label names for Render(); it must outlive the pool.
  explicit LabelSetPool(const LabelSpace* space);

  // Canonicalizes `ids` (sorted+deduplicated on the way in) to a handle.
  LabelSetRef Intern(std::vector<LabelId> ids);
  LabelSetRef Intern(const LabelSet& set);
  // Singleton {id}; memoized per id.
  LabelSetRef Single(LabelId id);

  // Set algebra on handles. Union is memoized; inline-mask pairs short-circuit
  // before touching the cache when one side absorbs the other.
  LabelSetRef Union(LabelSetRef a, LabelSetRef b);
  LabelSetRef Insert(LabelSetRef set, LabelId id) { return Union(set, Single(id)); }

  bool Contains(LabelSetRef set, LabelId id) const;
  bool IsSubsetOf(LabelSetRef a, LabelSetRef b) const;

  bool Empty(LabelSetRef set) const { return set == kEmptyLabelSetRef; }
  size_t SizeOf(LabelSetRef set) const { return entries_[set].ids.size(); }
  const std::vector<LabelId>& Ids(LabelSetRef set) const { return entries_[set].ids; }
  // Inline 64-bit mask, or 0 with is_inline=false for spilled sets (some id
  // >= 64). The empty set is inline with mask 0.
  uint64_t MaskOf(LabelSetRef set) const { return entries_[set].mask; }
  bool IsInline(LabelSetRef set) const { return entries_[set].is_inline; }

  // Copies the handle's ids back into a LabelSet (compatibility shim for the
  // non-interned API surface).
  LabelSet Materialize(LabelSetRef set) const { return LabelSet(entries_[set].ids); }

  // "{employee, customer}" — rendered once per handle, then cached.
  const std::string& Render(LabelSetRef set) const;

  // Introspection (tests / stats).
  size_t size() const { return entries_.size(); }  // distinct sets, incl. {}
  uint64_t union_cache_hits() const { return union_cache_hits_; }
  uint64_t renders_computed() const { return renders_computed_; }

 private:
  struct Entry {
    std::vector<LabelId> ids;  // sorted, deduplicated
    uint64_t mask = 0;         // valid iff is_inline
    bool is_inline = true;
  };

  LabelSetRef InternSortedUnique(std::vector<LabelId> ids);
  static uint64_t HashIds(const std::vector<LabelId>& ids);

  const LabelSpace* space_;
  std::vector<Entry> entries_;
  // Hash-consing index: content hash -> handles with that hash (collisions
  // resolved by comparing ids). Inline sets hash their mask, so the common
  // case is one probe + one 64-bit compare.
  std::unordered_map<uint64_t, std::vector<LabelSetRef>> by_hash_;
  // (min(a,b) << 32 | max(a,b)) -> union handle. Never invalidated: interned
  // sets are immutable.
  std::unordered_map<uint64_t, LabelSetRef> union_cache_;
  std::vector<LabelSetRef> singles_;  // LabelId -> handle of {id} (0 = unmade)
  mutable std::vector<std::string> renders_;  // handle -> cached rendering
  mutable uint64_t renders_computed_ = 0;
  uint64_t union_cache_hits_ = 0;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_IFC_LABELSET_POOL_H_
