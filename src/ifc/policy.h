// IFC policy model (§4.3, Figs. 4 and 7): label functions ("labellers"),
// privacy rules, and injection points mapping source-code locations to
// labellers.
//
// Label functions are written in MiniScript (the application language), kept
// here as source strings; the DIFT tracker compiles them at load time. This
// mirrors the paper, where label functions are JavaScript closures shipped
// inside the instrumented application.
#ifndef TURNSTILE_SRC_IFC_POLICY_H_
#define TURNSTILE_SRC_IFC_POLICY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ifc/labelset_pool.h"
#include "src/ifc/lattice.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace turnstile {

// One node of a labeller specification tree.
//
// JSON forms:
//   {"$fn": "item => ..."}            — MiniScript function of the value
//   {"$const": "L"} / {"$const": ["A","B"]}
//                                     — constant label(s); also the
//                                       declassify/endorse mechanism
//   {"$map": <spec>}                  — apply <spec> to each array element
//   {"$invoke": "(obj, args) => ..."} — label evaluated at call time (sinks)
//   {"prop": <spec>, ...}             — traverse object properties; the
//                                       object's own label is the union of
//                                       the property labels
struct LabellerSpec {
  enum class Kind { kConst, kFn, kMap, kInvoke, kObject };
  Kind kind = Kind::kConst;
  std::vector<std::string> const_labels;                       // kConst
  std::string fn_source;                                       // kFn / kInvoke
  std::shared_ptr<LabellerSpec> element;                       // kMap
  std::vector<std::pair<std::string, std::shared_ptr<LabellerSpec>>> fields;  // kObject

  static Result<std::shared_ptr<LabellerSpec>> FromJson(const Json& json);
};

// Where the instrumentor must insert a label() call.
struct Injection {
  std::string file;      // source name ("" matches any)
  int line = 0;          // 1-based line of the labelled expression
  std::string object;    // variable/property name being labelled
  std::string labeller;  // name of the labeller to apply
};

class Policy {
 public:
  Policy() : rules_(&space_), pool_(&space_) {}

  // Parses the JSON policy format of Fig. 4 / Fig. 7 and validates the rule
  // DAG (cycles are a policy error).
  static Result<std::unique_ptr<Policy>> FromJson(const Json& json);
  static Result<std::unique_ptr<Policy>> FromJsonText(const std::string& text);

  const LabellerSpec* FindLabeller(const std::string& name) const;
  const std::vector<Injection>& injections() const { return injections_; }
  RuleGraph& rules() { return rules_; }
  const RuleGraph& rules() const { return rules_; }
  LabelSpace& space() { return space_; }
  const LabelSpace& space() const { return space_; }
  // Per-policy hash-consing pool: every label set the DIFT tracker carries is
  // interned here, so set identity is handle identity.
  LabelSetPool& pool() { return pool_; }
  const LabelSetPool& pool() const { return pool_; }

  // Builds a LabelSet from label names, interning as needed.
  LabelSet MakeLabelSet(const std::vector<std::string>& names);

  // Programmatic construction (used by tests and the workload generator).
  void AddLabeller(const std::string& name, std::shared_ptr<LabellerSpec> spec);
  void AddInjection(Injection injection);

 private:
  LabelSpace space_;
  RuleGraph rules_;
  LabelSetPool pool_;
  std::unordered_map<std::string, std::shared_ptr<LabellerSpec>> labellers_;
  std::vector<Injection> injections_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_IFC_POLICY_H_
