#include "src/ifc/labelset_pool.h"

#include <algorithm>

namespace turnstile {

namespace {

// SplitMix64 finalizer — cheap, well-distributed mix for cache keys.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

LabelSetPool::LabelSetPool(const LabelSpace* space) : space_(space) {
  entries_.push_back(Entry{});  // handle 0: the empty set (inline, mask 0)
  by_hash_[Mix64(0)].push_back(kEmptyLabelSetRef);
}

uint64_t LabelSetPool::HashIds(const std::vector<LabelId>& ids) {
  // Inline sets hash their mask so equal sets hash equally regardless of the
  // path that produced them; spilled sets fold ids FNV-style.
  uint64_t mask = 0;
  bool is_inline = true;
  for (LabelId id : ids) {
    if (id < 64) {
      mask |= uint64_t{1} << id;
    } else {
      is_inline = false;
      break;
    }
  }
  if (is_inline) {
    return Mix64(mask);
  }
  uint64_t h = 0xCBF29CE484222325ull;
  for (LabelId id : ids) {
    h = (h ^ id) * 0x100000001B3ull;
  }
  return Mix64(h | (uint64_t{1} << 63));
}

LabelSetRef LabelSetPool::InternSortedUnique(std::vector<LabelId> ids) {
  if (ids.empty()) {
    return kEmptyLabelSetRef;
  }
  uint64_t hash = HashIds(ids);
  std::vector<LabelSetRef>& bucket = by_hash_[hash];
  for (LabelSetRef ref : bucket) {
    if (entries_[ref].ids == ids) {
      return ref;
    }
  }
  Entry entry;
  entry.mask = 0;
  entry.is_inline = true;
  for (LabelId id : ids) {
    if (id < 64) {
      entry.mask |= uint64_t{1} << id;
    } else {
      entry.is_inline = false;
      entry.mask = 0;
      break;
    }
  }
  entry.ids = std::move(ids);
  LabelSetRef ref = static_cast<LabelSetRef>(entries_.size());
  entries_.push_back(std::move(entry));
  bucket.push_back(ref);
  return ref;
}

LabelSetRef LabelSetPool::Intern(std::vector<LabelId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return InternSortedUnique(std::move(ids));
}

LabelSetRef LabelSetPool::Intern(const LabelSet& set) {
  // LabelSet keeps its ids sorted+deduplicated already.
  return InternSortedUnique(set.ids());
}

LabelSetRef LabelSetPool::Single(LabelId id) {
  if (singles_.size() <= id) {
    singles_.resize(static_cast<size_t>(id) + 1, kEmptyLabelSetRef);
  }
  if (singles_[id] == kEmptyLabelSetRef) {
    singles_[id] = InternSortedUnique({id});
  }
  return singles_[id];
}

LabelSetRef LabelSetPool::Union(LabelSetRef a, LabelSetRef b) {
  if (a == b || b == kEmptyLabelSetRef) {
    return a;
  }
  if (a == kEmptyLabelSetRef) {
    return b;
  }
  const Entry& ea = entries_[a];
  const Entry& eb = entries_[b];
  // Inline fast path: absorption needs no table at all.
  if (ea.is_inline && eb.is_inline) {
    uint64_t merged = ea.mask | eb.mask;
    if (merged == ea.mask) {
      return a;
    }
    if (merged == eb.mask) {
      return b;
    }
  }
  uint64_t key = a < b ? (uint64_t{a} << 32) | b : (uint64_t{b} << 32) | a;
  auto cached = union_cache_.find(key);
  if (cached != union_cache_.end()) {
    ++union_cache_hits_;
    return cached->second;
  }
  std::vector<LabelId> merged;
  merged.reserve(ea.ids.size() + eb.ids.size());
  std::set_union(ea.ids.begin(), ea.ids.end(), eb.ids.begin(), eb.ids.end(),
                 std::back_inserter(merged));
  LabelSetRef result = InternSortedUnique(std::move(merged));
  union_cache_[key] = result;
  return result;
}

bool LabelSetPool::Contains(LabelSetRef set, LabelId id) const {
  const Entry& entry = entries_[set];
  if (entry.is_inline) {
    return id < 64 && (entry.mask >> id) & 1;
  }
  return std::binary_search(entry.ids.begin(), entry.ids.end(), id);
}

bool LabelSetPool::IsSubsetOf(LabelSetRef a, LabelSetRef b) const {
  if (a == b || a == kEmptyLabelSetRef) {
    return true;
  }
  const Entry& ea = entries_[a];
  const Entry& eb = entries_[b];
  if (ea.is_inline && eb.is_inline) {
    return (ea.mask & ~eb.mask) == 0;
  }
  return std::includes(eb.ids.begin(), eb.ids.end(), ea.ids.begin(), ea.ids.end());
}

const std::string& LabelSetPool::Render(LabelSetRef set) const {
  if (renders_.size() <= set) {
    renders_.resize(entries_.size());
  }
  std::string& out = renders_[set];
  if (out.empty()) {
    ++renders_computed_;
    out = "{";
    const std::vector<LabelId>& ids = entries_[set].ids;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += space_->NameOf(ids[i]);
    }
    out += "}";
  }
  return out;
}

}  // namespace turnstile
