// Privacy labels and compound labels (label sets).
//
// Following §2 of the paper: each object carries a set of privacy labels; a
// singleton set is an atomic label, and operations over labelled values union
// the sets (Denning's lattice model).
#ifndef TURNSTILE_SRC_IFC_LABEL_H_
#define TURNSTILE_SRC_IFC_LABEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace turnstile {

using LabelId = uint16_t;

// Interns label names to dense ids. One LabelSpace per policy.
class LabelSpace {
 public:
  // Returns the id for `name`, interning it on first use.
  LabelId Intern(const std::string& name);
  // Returns the id for `name`, or nullopt when unknown. (An id is a dense
  // handle; a -1 sentinel would silently narrow once stored back into one.)
  std::optional<LabelId> Find(const std::string& name) const;
  const std::string& NameOf(LabelId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

// An immutable-ish set of label ids, kept sorted and deduplicated.
class LabelSet {
 public:
  LabelSet() = default;
  explicit LabelSet(std::vector<LabelId> ids);
  static LabelSet Single(LabelId id) { return LabelSet({id}); }

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }
  const std::vector<LabelId>& ids() const { return ids_; }

  bool Contains(LabelId id) const;
  bool IsSubsetOf(const LabelSet& other) const;

  // Adds `id`, keeping the set sorted.
  void Insert(LabelId id);
  // Set union (the compound-label operation of Fig. 5).
  void UnionWith(const LabelSet& other);
  static LabelSet Union(const LabelSet& a, const LabelSet& b);

  bool operator==(const LabelSet& other) const { return ids_ == other.ids_; }

  // "{employee, customer}" or "{}" — for diagnostics.
  std::string ToString(const LabelSpace& space) const;

 private:
  std::vector<LabelId> ids_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_IFC_LABEL_H_
