#include "src/ifc/label.h"

#include <algorithm>

namespace turnstile {

LabelId LabelSpace::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(name);
  ids_[name] = id;
  return id;
}

std::optional<LabelId> LabelSpace::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

LabelSet::LabelSet(std::vector<LabelId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool LabelSet::Contains(LabelId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool LabelSet::IsSubsetOf(const LabelSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(), ids_.end());
}

void LabelSet::Insert(LabelId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) {
    ids_.insert(it, id);
  }
}

void LabelSet::UnionWith(const LabelSet& other) {
  std::vector<LabelId> merged;
  merged.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(), other.ids_.end(),
                 std::back_inserter(merged));
  ids_ = std::move(merged);
}

LabelSet LabelSet::Union(const LabelSet& a, const LabelSet& b) {
  LabelSet out = a;
  out.UnionWith(b);
  return out;
}

std::string LabelSet::ToString(const LabelSpace& space) const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += space.NameOf(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace turnstile
