#include "src/ifc/lattice.h"

#include <deque>

#include "src/support/strings.h"

namespace turnstile {

void RuleGraph::AddRule(const std::string& from, const std::string& to) {
  LabelId from_id = space_->Intern(from);
  LabelId to_id = space_->Intern(to);
  std::vector<LabelId>& out = edges_[from_id];
  for (LabelId existing : out) {
    if (existing == to_id) {
      return;  // duplicate rule
    }
  }
  out.push_back(to_id);
  ++edge_total_;
  reach_cache_.clear();
  set_cache_.clear();
}

Status RuleGraph::AddRuleChain(const std::string& chain) {
  std::vector<std::string> parts;
  for (const std::string& piece : StrSplit(chain, '>')) {
    std::string_view trimmed = StrTrim(piece);
    if (!trimmed.empty() && trimmed.back() == '-') {
      trimmed.remove_suffix(1);
      trimmed = StrTrim(trimmed);
    }
    if (trimmed.empty()) {
      return PolicyError("malformed rule '" + chain + "'");
    }
    parts.emplace_back(trimmed);
  }
  if (parts.size() < 2) {
    return PolicyError("rule must have at least two labels: '" + chain + "'");
  }
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    AddRule(parts[i], parts[i + 1]);
  }
  return Status::Ok();
}

const std::vector<LabelId>& RuleGraph::successors(LabelId id) const {
  static const std::vector<LabelId> kEmpty;
  auto it = edges_.find(id);
  return it == edges_.end() ? kEmpty : it->second;
}

Status RuleGraph::Validate() const {
  // Iterative three-color DFS over every interned label.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(space_->size(), Color::kWhite);
  for (LabelId start = 0; start < space_->size(); ++start) {
    if (color[start] != Color::kWhite) {
      continue;
    }
    // Stack of (node, next-successor-index).
    std::vector<std::pair<LabelId, size_t>> stack = {{start, 0}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, index] = stack.back();
      const std::vector<LabelId>& succ = successors(node);
      if (index >= succ.size()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      LabelId next = succ[index++];
      if (color[next] == Color::kGray) {
        return PolicyError("privacy rules contain a cycle through label '" +
                           space_->NameOf(next) + "'");
      }
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.push_back({next, 0});
      }
    }
  }
  return Status::Ok();
}

bool RuleGraph::CanFlowLabel(LabelId from, LabelId to) const {
  if (from == to) {
    return true;
  }
  uint32_t key = (static_cast<uint32_t>(from) << 16) | to;
  auto cached = reach_cache_.find(key);
  if (cached != reach_cache_.end()) {
    return cached->second;
  }
  // BFS — O(V + E) on the first query for this pair.
  std::vector<bool> visited(space_->size(), false);
  std::deque<LabelId> frontier = {from};
  visited[from] = true;
  bool reachable = false;
  while (!frontier.empty()) {
    LabelId node = frontier.front();
    frontier.pop_front();
    if (node == to) {
      reachable = true;
      break;
    }
    for (LabelId next : successors(node)) {
      if (!visited[next]) {
        visited[next] = true;
        frontier.push_back(next);
      }
    }
  }
  reach_cache_[key] = reachable;
  return reachable;
}

bool RuleGraph::CanFlowSet(LabelSetRef data, LabelSetRef receiver,
                           const LabelSetPool& pool) const {
  return CanFlowSetExplained(data, receiver, pool, /*rule_out=*/nullptr);
}

bool RuleGraph::CanFlowSetExplained(LabelSetRef data, LabelSetRef receiver,
                                    const LabelSetPool& pool,
                                    const std::string** rule_out) const {
  static const std::string kEmptyData = "empty-data";
  static const std::string kEmptyReceiver = "empty-receiver";
  static const std::string kSubset = "subset";
  if (data == kEmptyLabelSetRef) {
    if (rule_out != nullptr) {
      *rule_out = &kEmptyData;
    }
    return true;
  }
  if (receiver == kEmptyLabelSetRef) {
    if (rule_out != nullptr) {
      *rule_out = &kEmptyReceiver;
    }
    return false;
  }
  // Subset special case (X ⊑ Y iff X ⊆ Y): identity paths need no DAG walk,
  // and on inline handles this is two ALU ops.
  if (pool.IsSubsetOf(data, receiver)) {
    if (rule_out != nullptr) {
      *rule_out = &kSubset;
    }
    return true;
  }
  uint64_t key = (uint64_t{data} << 32) | receiver;
  auto cached = set_cache_.find(key);
  if (cached != set_cache_.end()) {
    if (rule_out != nullptr) {
      *rule_out = &cached->second.rule;
    }
    return cached->second.allowed;
  }
  bool allowed = true;
  std::string rule;
  for (LabelId from : pool.Ids(data)) {
    bool ok = false;
    for (LabelId to : pool.Ids(receiver)) {
      if (CanFlowLabel(from, to)) {
        // Record the granting edge per data label, e.g. "secret -> archive".
        if (!rule.empty()) {
          rule += ", ";
        }
        rule += space_->NameOf(from) + " -> " + space_->NameOf(to);
        ok = true;
        break;
      }
    }
    if (!ok) {
      allowed = false;
      rule = "no rule allows '" + space_->NameOf(from) + "'";
      break;
    }
  }
  SetDecision& decision = set_cache_[key];
  decision.allowed = allowed;
  decision.rule = std::move(rule);
  if (rule_out != nullptr) {
    *rule_out = &decision.rule;
  }
  return decision.allowed;
}

bool RuleGraph::CanFlowSet(const LabelSet& data, const LabelSet& receiver) const {
  if (data.empty()) {
    return true;
  }
  if (receiver.empty()) {
    return false;
  }
  for (LabelId from : data.ids()) {
    bool ok = false;
    for (LabelId to : receiver.ids()) {
      if (CanFlowLabel(from, to)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace turnstile
