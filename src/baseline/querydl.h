// QueryDL — the reproduction's stand-in for CodeQL (§6.1).
//
// CodeQL is a general-purpose, polyglot analysis engine: it compiles the
// program into a relational intermediate representation and evaluates Datalog
// queries by materializing flow relations. QueryDL mirrors that architecture:
//
//   1. lowers every function to a three-address IR (temps + variable slots),
//   2. builds a global value-flow graph over IR slots,
//   3. materializes the full transitive closure of the flow relation
//      (bitset semi-naive evaluation — the honest source of its slowness),
//   4. answers source→sink queries from the closure.
//
// Its *catalog* is the same as Turnstile's (the paper's custom CodeQL query
// defined equivalent IOSource/ExpressSource/NodeRedSource classes); what
// differs is propagation power:
//   - calls are resolved only when the callee is syntactically direct
//     (function declarations, single-assignment function consts, object
//     literal methods, class methods),
//   - type tags do not propagate through function parameters or returns,
//   - no promise (.then) step, no dynamic (bracket) calls,
//   + method lookup follows the full class inheritance chain — the
//     prototype-chain strength the paper reports CodeQL having over
//     Turnstile.
#ifndef TURNSTILE_SRC_BASELINE_QUERYDL_H_
#define TURNSTILE_SRC_BASELINE_QUERYDL_H_

#include "src/analysis/analyzer.h"
#include "src/analysis/catalog.h"
#include "src/lang/ast.h"
#include "src/support/status.h"

namespace turnstile {

struct QueryDlStats {
  int ir_instructions = 0;
  int flow_slots = 0;
  int flow_edges = 0;
  uint64_t closure_word_ops = 0;  // bitset word operations spent on closure
  int sources_found = 0;
  int sinks_found = 0;
};

struct QueryDlResult {
  std::vector<DataflowPath> paths;
  QueryDlStats stats;
};

// Runs the QueryDL taint analysis with the default catalog.
Result<QueryDlResult> QueryDlAnalyze(const Program& program);
Result<QueryDlResult> QueryDlAnalyze(const Program& program, const Catalog& catalog);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_BASELINE_QUERYDL_H_
