#include "src/baseline/querydl.h"

#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "src/analysis/scope.h"

namespace turnstile {

namespace {

// IR instruction (three-address form). The IR exists to mirror CodeQL's
// compile-to-relations pipeline; the taint relation is evaluated over slots
// (= AST value nodes + variable bindings) derived from it.
struct IrInstr {
  enum class Op {
    kConst,
    kLoadVar,
    kStoreVar,
    kBinOp,
    kPropRead,
    kPropWrite,
    kCall,
    kNew,
    kMakeFn,
    kMakeObj,
    kMakeArr,
    kReturn,
  };
  Op op;
  int ast = -1;
  int a = -1;
  int b = -1;
  std::string prop;
};

struct SourceSeed {
  int slot = -1;
  int report_ast = -1;
  std::string description;
};

struct SinkSite {
  int call_ast = -1;
  std::vector<int> data_arg_slots;
  std::string description;
};

class QueryDl {
 public:
  QueryDl(const Program& program, const Catalog& catalog)
      : resolved_(ResolveScopes(program)), catalog_(catalog) {
    int n = resolved_.total_nodes();
    edges_.resize(static_cast<size_t>(n));
  }

  Result<QueryDlResult> Run() {
    LowerToIr(resolved_.program->root, -1);
    CollectBindingDecls();
    BuildEdges();
    // Syntactic (API-chain) rule evaluation to a fixpoint: callback-parameter
    // tags can enable further matches.
    for (int round = 0; round < 8; ++round) {
      if (!ScanCalls()) {
        break;
      }
    }
    QueryDlResult result;
    result.stats.ir_instructions = static_cast<int>(ir_.size());
    result.stats.flow_slots = resolved_.total_nodes();
    int edge_count = 0;
    for (const auto& out : edges_) {
      edge_count += static_cast<int>(out.size());
    }
    result.stats.flow_edges = edge_count;
    result.stats.sources_found = static_cast<int>(sources_.size());
    result.stats.sinks_found = static_cast<int>(sinks_.size());
    MaterializeClosure(&result.stats);
    EvaluateQueries(&result);
    return result;
  }

 private:
  const NodePtr& Ast(int id) const { return resolved_.ast_by_id[static_cast<size_t>(id)]; }

  int UseBinding(const NodePtr& node) const {
    auto it = resolved_.use_to_binding.find(node->id);
    return it == resolved_.use_to_binding.end() ? -1 : it->second;
  }

  void AddEdge(int u, int v) {
    if (u >= 0 && v >= 0 && u != v) {
      edges_[static_cast<size_t>(u)].insert(v);
    }
  }

  // --- IR lowering -------------------------------------------------------------

  // Produces a linear three-address IR. Each expression's "temp" is its AST
  // node id (dense and unique), which doubles as its flow slot.
  void LowerToIr(const NodePtr& node, int fn_index) {
    int child_fn = fn_index;
    if (node->IsFunctionLike()) {
      auto it = resolved_.function_by_ast.find(node->id);
      if (it != resolved_.function_by_ast.end()) {
        child_fn = it->second;
      }
      ir_.push_back({IrInstr::Op::kMakeFn, node->id, -1, -1, ""});
    }
    for (const NodePtr& child : node->children) {
      LowerToIr(child, child_fn);
    }
    switch (node->kind) {
      case NodeKind::kNumberLit:
      case NodeKind::kStringLit:
      case NodeKind::kBoolLit:
        ir_.push_back({IrInstr::Op::kConst, node->id, -1, -1, ""});
        break;
      case NodeKind::kIdentifier:
        ir_.push_back({IrInstr::Op::kLoadVar, node->id, UseBinding(node), -1, node->str});
        break;
      case NodeKind::kBinaryExpr:
      case NodeKind::kLogicalExpr:
        ir_.push_back({IrInstr::Op::kBinOp, node->id, node->children[0]->id,
                       node->children[1]->id, node->str});
        break;
      case NodeKind::kMemberExpr:
        ir_.push_back({IrInstr::Op::kPropRead, node->id, node->children[0]->id, -1, node->str});
        break;
      case NodeKind::kAssignExpr:
        if (node->children[0]->kind == NodeKind::kIdentifier) {
          ir_.push_back({IrInstr::Op::kStoreVar, node->id, node->children[1]->id,
                         UseBinding(node->children[0]), node->children[0]->str});
        } else {
          ir_.push_back({IrInstr::Op::kPropWrite, node->id, node->children[1]->id,
                         node->children[0]->children[0]->id, node->children[0]->str});
        }
        break;
      case NodeKind::kCallExpr:
        ir_.push_back({IrInstr::Op::kCall, node->id, node->children[0]->id, -1, ""});
        call_sites_.push_back(node->id);
        break;
      case NodeKind::kNewExpr:
        ir_.push_back({IrInstr::Op::kNew, node->id, node->children[0]->id, -1, ""});
        call_sites_.push_back(node->id);
        break;
      case NodeKind::kObjectLit:
        ir_.push_back({IrInstr::Op::kMakeObj, node->id, -1, -1, ""});
        break;
      case NodeKind::kArrayLit:
        ir_.push_back({IrInstr::Op::kMakeArr, node->id, -1, -1, ""});
        break;
      case NodeKind::kReturnStmt:
        if (!node->children.empty() && fn_index >= 0) {
          ir_.push_back({IrInstr::Op::kReturn, node->id, node->children[0]->id, fn_index, ""});
        }
        break;
      default:
        break;
    }
  }

  // --- binding declaration info -------------------------------------------------

  struct BindingDecl {
    int init_ast = -1;        // initializer expression (declarator only)
    int store_count = 0;      // number of assignments/declarations
    int fn_index = -1;        // function literal/decl bound here
    int class_index = -1;     // `x = new C()` instance
    int object_literal = -1;  // `x = { ... }` ast id
    std::string tag;          // syntactic API-chain tag
  };

  void CollectBindingDecls() {
    ForEachNode(resolved_.program->root, [this](const NodePtr& node) {
      if (node->kind == NodeKind::kVarDecl) {
        for (const NodePtr& declarator : node->children) {
          auto it = resolved_.decl_binding_by_ast.find(declarator->id);
          if (it == resolved_.decl_binding_by_ast.end()) {
            continue;
          }
          BindingDecl& decl = binding_decls_[it->second];
          ++decl.store_count;
          if (!declarator->children.empty()) {
            decl.init_ast = declarator->children[0]->id;
          }
        }
      } else if (node->kind == NodeKind::kFunctionDecl) {
        auto it = resolved_.decl_binding_by_ast.find(node->id);
        auto fn = resolved_.function_by_ast.find(node->id);
        if (it != resolved_.decl_binding_by_ast.end() &&
            fn != resolved_.function_by_ast.end()) {
          BindingDecl& decl = binding_decls_[it->second];
          ++decl.store_count;
          decl.fn_index = fn->second;
        }
      } else if (node->kind == NodeKind::kAssignExpr &&
                 node->children[0]->kind == NodeKind::kIdentifier) {
        int binding = UseBinding(node->children[0]);
        if (binding >= 0) {
          ++binding_decls_[binding].store_count;
        }
      }
    });
    // Second pass: classify single-assignment initializers.
    for (auto& [binding, decl] : binding_decls_) {
      if (decl.init_ast < 0) {
        continue;
      }
      const NodePtr& init = Ast(decl.init_ast);
      if (init->IsFunctionLike()) {
        auto fn = resolved_.function_by_ast.find(init->id);
        if (fn != resolved_.function_by_ast.end()) {
          decl.fn_index = fn->second;
        }
      } else if (init->kind == NodeKind::kObjectLit) {
        decl.object_literal = init->id;
      } else if (init->kind == NodeKind::kNewExpr) {
        int class_binding = UseBinding(init->children[0]);
        auto cls = FindClassOfBinding(class_binding);
        if (cls >= 0) {
          decl.class_index = cls;
        }
      }
      if (decl.store_count == 1) {
        decl.tag = TagOfExpr(Ast(decl.init_ast), /*depth=*/0);
      }
    }
  }

  int FindClassOfBinding(int binding) const {
    if (binding < 0) {
      return -1;
    }
    for (size_t ci = 0; ci < resolved_.classes.size(); ++ci) {
      auto it = resolved_.decl_binding_by_ast.find(resolved_.classes[ci].ast_id);
      if (it != resolved_.decl_binding_by_ast.end() && it->second == binding) {
        return static_cast<int>(ci);
      }
    }
    return -1;
  }

  // Syntactic API-chain typing: CodeQL-style getACall()/getAMemberCall()
  // chains. Only direct chains and single-assignment consts carry tags —
  // never function parameters or returns.
  std::string TagOfExpr(const NodePtr& node, int depth) {
    if (depth > 12) {
      return "";
    }
    switch (node->kind) {
      case NodeKind::kIdentifier: {
        int binding = UseBinding(node);
        auto it = binding_decls_.find(binding);
        if (it != binding_decls_.end() && it->second.store_count == 1) {
          return it->second.tag;
        }
        auto pt = param_tags_.find(binding);
        if (pt != param_tags_.end()) {
          return pt->second;  // structural callback-parameter tag
        }
        return "";
      }
      case NodeKind::kCallExpr:
      case NodeKind::kNewExpr: {
        const NodePtr& callee = node->children[0];
        if (callee->kind == NodeKind::kIdentifier && callee->str == "require" &&
            UseBinding(callee) < 0 && node->children.size() > 1 &&
            node->children[1]->kind == NodeKind::kStringLit) {
          return "module:" + node->children[1]->str;
        }
        if (callee->kind == NodeKind::kMemberExpr) {
          std::string recv_tag = TagOfExpr(callee->children[0], depth + 1);
          if (!recv_tag.empty()) {
            const CallTypeRule* rule = catalog_.FindCallType(recv_tag, callee->str);
            if (rule != nullptr) {
              return rule->result_tag;
            }
            // `.on(...)` returns the receiver in fluent APIs.
            if (callee->str == "on" || callee->str == "once") {
              return recv_tag;
            }
          }
          return "";
        }
        if (callee->kind == NodeKind::kIdentifier) {
          std::string callee_tag = TagOfExpr(callee, depth + 1);
          if (!callee_tag.empty()) {
            const CallTypeRule* rule = catalog_.FindCallType(callee_tag, "");
            if (rule != nullptr) {
              return rule->result_tag;
            }
          }
        }
        return "";
      }
      default:
        return "";
    }
  }

  // --- flow edges -----------------------------------------------------------------

  void BuildEdges() {
    for (const IrInstr& instr : ir_) {
      switch (instr.op) {
        case IrInstr::Op::kLoadVar:
          AddEdge(instr.a, instr.ast);
          break;
        case IrInstr::Op::kStoreVar:
          AddEdge(instr.a, instr.b);
          AddEdge(instr.a, instr.ast);
          break;
        case IrInstr::Op::kBinOp:
          AddEdge(instr.a, instr.ast);
          AddEdge(instr.b, instr.ast);
          break;
        case IrInstr::Op::kPropRead:
          AddEdge(instr.a, instr.ast);
          break;
        case IrInstr::Op::kPropWrite: {
          AddEdge(instr.a, instr.ast);
          // Taint the base variable when the write target is a direct
          // identifier chain (obj.a.b = v).
          NodePtr base = Ast(instr.b);
          while (base->kind == NodeKind::kMemberExpr || base->kind == NodeKind::kIndexExpr) {
            base = base->children[0];
          }
          if (base->kind == NodeKind::kIdentifier || base->kind == NodeKind::kThisExpr) {
            AddEdge(instr.a, UseBinding(base));
          }
          break;
        }
        case IrInstr::Op::kReturn:
          AddEdge(instr.a,
                  resolved_.functions[static_cast<size_t>(instr.b)].return_binding);
          break;
        default:
          break;
      }
    }
    // Remaining structural edges taken straight from the AST.
    ForEachNode(resolved_.program->root, [this](const NodePtr& node) {
      switch (node->kind) {
        case NodeKind::kVarDecl:
          for (const NodePtr& declarator : node->children) {
            auto it = resolved_.decl_binding_by_ast.find(declarator->id);
            if (it != resolved_.decl_binding_by_ast.end() && !declarator->children.empty()) {
              AddEdge(declarator->children[0]->id, it->second);
            }
          }
          break;
        case NodeKind::kArrayLit:
          for (const NodePtr& element : node->children) {
            AddEdge(element->id, node->id);
          }
          break;
        case NodeKind::kObjectLit:
          for (const NodePtr& prop : node->children) {
            const NodePtr& value = prop->num != 0 ? prop->children[1] : prop->children[0];
            AddEdge(value->id, node->id);
          }
          break;
        case NodeKind::kSpreadElement:
        case NodeKind::kAwaitExpr:
        case NodeKind::kUnaryExpr:
          AddEdge(node->children[0]->id, node->id);
          break;
        case NodeKind::kConditionalExpr:
          AddEdge(node->children[1]->id, node->id);
          AddEdge(node->children[2]->id, node->id);
          break;
        case NodeKind::kForOfStmt: {
          auto it = resolved_.decl_binding_by_ast.find(node->children[0]->id);
          if (it != resolved_.decl_binding_by_ast.end()) {
            AddEdge(node->children[1]->id, it->second);
          }
          break;
        }
        case NodeKind::kIndexExpr:
          AddEdge(node->children[0]->id, node->id);
          break;
        case NodeKind::kArrowFunction: {
          auto it = resolved_.function_by_ast.find(node->id);
          if (it != resolved_.function_by_ast.end() &&
              node->children[1]->kind != NodeKind::kBlockStmt) {
            AddEdge(node->children[1]->id,
                    resolved_.functions[static_cast<size_t>(it->second)].return_binding);
          }
          break;
        }
        default:
          break;
      }
    });
  }

  // --- call resolution + catalog (syntactic only) -----------------------------------

  // Resolves a callee to a function index using only direct syntactic
  // evidence. Returns -1 when unresolved.
  int ResolveDirectCallee(const NodePtr& callee) {
    if (callee->kind == NodeKind::kIdentifier) {
      auto it = binding_decls_.find(UseBinding(callee));
      if (it != binding_decls_.end() && it->second.fn_index >= 0 &&
          it->second.store_count == 1) {
        return it->second.fn_index;
      }
      return -1;
    }
    if (callee->kind == NodeKind::kFunctionExpr || callee->kind == NodeKind::kArrowFunction) {
      auto it = resolved_.function_by_ast.find(callee->id);
      return it == resolved_.function_by_ast.end() ? -1 : it->second;
    }
    if (callee->kind == NodeKind::kMemberExpr &&
        callee->children[0]->kind == NodeKind::kIdentifier) {
      auto it = binding_decls_.find(UseBinding(callee->children[0]));
      if (it == binding_decls_.end() || it->second.store_count != 1) {
        return -1;
      }
      // Object-literal method.
      if (it->second.object_literal >= 0) {
        const NodePtr& literal = Ast(it->second.object_literal);
        for (const NodePtr& prop : literal->children) {
          if (prop->num == 0 && prop->str == callee->str &&
              prop->children[0]->IsFunctionLike()) {
            auto fn = resolved_.function_by_ast.find(prop->children[0]->id);
            if (fn != resolved_.function_by_ast.end()) {
              return fn->second;
            }
          }
        }
      }
      // Class instance method — resolved through the FULL inheritance chain
      // (QueryDL's prototype-chain advantage over Turnstile).
      if (it->second.class_index >= 0) {
        int ci = it->second.class_index;
        while (ci >= 0) {
          const ClassScopeInfo& cls = resolved_.classes[static_cast<size_t>(ci)];
          auto method = cls.methods.find(callee->str);
          if (method != cls.methods.end()) {
            return method->second;
          }
          auto super = resolved_.class_by_name.find(cls.super_name);
          ci = super == resolved_.class_by_name.end() ? -1 : super->second;
        }
      }
    }
    return -1;
  }

  int CallbackArgIndex(const NodePtr& call, int rule_index) const {
    int arg_count = static_cast<int>(call->children.size()) - 1;
    if (arg_count == 0) {
      return -1;
    }
    if (rule_index < 0) {
      return arg_count - 1;
    }
    return rule_index < arg_count ? rule_index : -1;
  }

  // The callback function literal at an argument position, or -1. QueryDL
  // accepts function literals and single-assignment function consts.
  int DirectFunctionArg(const NodePtr& arg) {
    if (arg->IsFunctionLike()) {
      auto it = resolved_.function_by_ast.find(arg->id);
      return it == resolved_.function_by_ast.end() ? -1 : it->second;
    }
    if (arg->kind == NodeKind::kIdentifier) {
      auto it = binding_decls_.find(UseBinding(arg));
      if (it != binding_decls_.end() && it->second.store_count == 1) {
        return it->second.fn_index;
      }
    }
    return -1;
  }

  bool AddSourceSeed(int slot, int report_ast, const std::string& description) {
    for (const SourceSeed& seed : sources_) {
      if (seed.slot == slot) {
        return false;
      }
    }
    sources_.push_back({slot, report_ast, description});
    return true;
  }

  bool ScanCalls() {
    bool changed = false;
    for (int call_ast : call_sites_) {
      const NodePtr& call = Ast(call_ast);
      const NodePtr& callee = call->children[0];

      // Direct call resolution: arg→param, return→call.
      int fn_index = ResolveDirectCallee(callee);
      if (fn_index >= 0) {
        const FunctionScopeInfo& fn = resolved_.functions[static_cast<size_t>(fn_index)];
        int arg_count = static_cast<int>(call->children.size()) - 1;
        for (int i = 0; i < arg_count && i < static_cast<int>(fn.param_bindings.size());
             ++i) {
          size_t before = edges_[static_cast<size_t>(call->children[static_cast<size_t>(i) + 1]->id)].size();
          AddEdge(call->children[static_cast<size_t>(i) + 1]->id,
                  fn.param_bindings[static_cast<size_t>(i)]);
          changed |= edges_[static_cast<size_t>(call->children[static_cast<size_t>(i) + 1]->id)].size() != before;
        }
        AddEdge(fn.return_binding, call_ast);
        // Receiver feeds `this` for class-method calls.
        if (callee->kind == NodeKind::kMemberExpr && fn.this_binding >= 0) {
          AddEdge(callee->children[0]->id, fn.this_binding);
        }
      } else if (callee->kind != NodeKind::kIndexExpr) {
        // Unresolved call: generic taint-through-library step. Dynamic
        // bracket calls are NOT modeled (CodeQL limitation per §6.1).
        std::string prop = callee->kind == NodeKind::kMemberExpr ? callee->str : "";
        if (prop != "on" && prop != "once" && prop != "subscribe" && prop != "listen") {
          for (size_t i = 1; i < call->children.size(); ++i) {
            AddEdge(call->children[i]->id, call_ast);
          }
          if (callee->kind == NodeKind::kMemberExpr) {
            AddEdge(callee->children[0]->id, call_ast);
          }
        }
      }

      // Catalog rules via syntactic tags.
      if (callee->kind != NodeKind::kMemberExpr) {
        continue;
      }
      std::string property = callee->str;
      std::string recv_tag = TagOfExpr(callee->children[0], 0);
      if (recv_tag.empty()) {
        continue;
      }
      std::string event;
      if ((property == "on" || property == "once") && call->children.size() > 1 &&
          call->children[1]->kind == NodeKind::kStringLit) {
        event = call->children[1]->str;
      }
      if (const CallbackSourceRule* rule =
              catalog_.FindCallbackSource(recv_tag, property, event)) {
        int cb_index = CallbackArgIndex(call, rule->callback_arg);
        if (cb_index >= 0) {
          int cb_fn = DirectFunctionArg(call->children[static_cast<size_t>(cb_index) + 1]);
          if (cb_fn >= 0) {
            const FunctionScopeInfo& fn = resolved_.functions[static_cast<size_t>(cb_fn)];
            if (rule->taint_param >= 0 &&
                rule->taint_param < static_cast<int>(fn.param_bindings.size())) {
              changed |= AddSourceSeed(
                  fn.param_bindings[static_cast<size_t>(rule->taint_param)], call_ast,
                  rule->description);
            }
            if (rule->tag_param >= 0 &&
                rule->tag_param < static_cast<int>(fn.param_bindings.size())) {
              int binding = fn.param_bindings[static_cast<size_t>(rule->tag_param)];
              if (param_tags_.find(binding) == param_tags_.end()) {
                param_tags_[binding] = rule->param_tag;
                changed = true;
              }
            }
          }
        }
      }
      if (const ReturnSourceRule* rule = catalog_.FindReturnSource(recv_tag, property)) {
        changed |= AddSourceSeed(call_ast, call_ast, rule->description);
      }
      if (const SinkRule* rule = catalog_.FindSink(recv_tag, property)) {
        bool known = false;
        for (const SinkSite& sink : sinks_) {
          if (sink.call_ast == call_ast) {
            known = true;
          }
        }
        if (!known) {
          SinkSite sink;
          sink.call_ast = call_ast;
          sink.description = rule->description;
          if (rule->data_args.size() == 1 && rule->data_args[0] == -1) {
            for (size_t i = 1; i < call->children.size(); ++i) {
              sink.data_arg_slots.push_back(call->children[i]->id);
            }
          } else {
            for (int index : rule->data_args) {
              if (index >= 0 && index + 1 < static_cast<int>(call->children.size())) {
                sink.data_arg_slots.push_back(
                    call->children[static_cast<size_t>(index) + 1]->id);
              }
            }
          }
          sinks_.push_back(std::move(sink));
          changed = true;
        }
      }
    }
    return changed;
  }

  // --- relation materialization (the Datalog-engine cost model) ---------------------

  void MaterializeClosure(QueryDlStats* stats) {
    const int n = resolved_.total_nodes();
    const int words = (n + 63) / 64;
    closure_.assign(static_cast<size_t>(n) * static_cast<size_t>(words), 0);
    auto row = [&](int i) { return closure_.data() + static_cast<size_t>(i) * words; };
    auto set_bit = [&](int i, int j) {
      row(i)[j / 64] |= (1ull << (j % 64));
    };
    for (int u = 0; u < n; ++u) {
      set_bit(u, u);
      for (int v : edges_[static_cast<size_t>(u)]) {
        set_bit(u, v);
      }
    }
    // Semi-naive fixpoint: row(u) |= row(v) for every edge u->v, repeated
    // until stable. This materializes the full flows-to relation, which is
    // what makes QueryDL an order of magnitude slower than Turnstile.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int u = 0; u < n; ++u) {
        uint64_t* ru = row(u);
        for (int v : edges_[static_cast<size_t>(u)]) {
          const uint64_t* rv = row(v);
          for (int w = 0; w < words; ++w) {
            uint64_t merged = ru[w] | rv[w];
            stats->closure_word_ops += 1;
            if (merged != ru[w]) {
              ru[w] = merged;
              changed = true;
            }
          }
        }
      }
    }
    closure_words_ = words;
  }

  bool Reaches(int u, int v) const {
    const uint64_t* ru = closure_.data() + static_cast<size_t>(u) * closure_words_;
    return (ru[v / 64] >> (v % 64)) & 1ull;
  }

  void EvaluateQueries(QueryDlResult* result) {
    std::set<std::pair<int, int>> reported;
    for (const SourceSeed& seed : sources_) {
      for (const SinkSite& sink : sinks_) {
        for (int arg : sink.data_arg_slots) {
          if (arg < 0 || !Reaches(seed.slot, arg)) {
            continue;
          }
          if (!reported.insert({seed.report_ast, sink.call_ast}).second) {
            continue;
          }
          DataflowPath path;
          path.source_ast = seed.report_ast;
          path.sink_ast = sink.call_ast;
          path.source_description = seed.description;
          path.sink_description = sink.description;
          path.source_loc = Ast(seed.report_ast)->loc;
          path.sink_loc = Ast(sink.call_ast)->loc;
          // Witness chain via BFS (only for reported pairs).
          std::vector<int> pred(static_cast<size_t>(resolved_.total_nodes()), -2);
          std::deque<int> frontier = {seed.slot};
          pred[static_cast<size_t>(seed.slot)] = -1;
          while (!frontier.empty()) {
            int u = frontier.front();
            frontier.pop_front();
            if (u == arg) {
              break;
            }
            for (int v : edges_[static_cast<size_t>(u)]) {
              if (pred[static_cast<size_t>(v)] == -2) {
                pred[static_cast<size_t>(v)] = u;
                frontier.push_back(v);
              }
            }
          }
          std::vector<int> chain;
          for (int node = arg; node >= 0; node = pred[static_cast<size_t>(node)]) {
            if (node < resolved_.ast_count) {
              chain.push_back(node);
            }
          }
          path.via_ast_nodes.assign(chain.rbegin(), chain.rend());
          path.via_ast_nodes.push_back(sink.call_ast);
          result->paths.push_back(std::move(path));
        }
      }
    }
  }

  ResolvedProgram resolved_;
  const Catalog& catalog_;
  std::vector<IrInstr> ir_;
  std::vector<std::set<int>> edges_;
  std::vector<int> call_sites_;
  std::map<int, BindingDecl> binding_decls_;
  std::map<int, std::string> param_tags_;
  std::vector<SourceSeed> sources_;
  std::vector<SinkSite> sinks_;
  std::vector<uint64_t> closure_;
  int closure_words_ = 0;
};

}  // namespace

Result<QueryDlResult> QueryDlAnalyze(const Program& program, const Catalog& catalog) {
  return QueryDl(program, catalog).Run();
}

Result<QueryDlResult> QueryDlAnalyze(const Program& program) {
  return QueryDlAnalyze(program, DefaultCatalog());
}

}  // namespace turnstile
