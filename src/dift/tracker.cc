#include "src/dift/tracker.h"

#include <utility>

#include "src/lang/parser.h"
#include "src/lang/resolve.h"
#include "src/runtime/context.h"
#include "src/support/logging.h"

namespace turnstile {

namespace {

Value ArgAt(const std::vector<Value>& args, size_t i) {
  return i < args.size() ? args[i] : Value::Undefined();
}
}  // namespace

DiftTracker::DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy)
    : DiftTracker(interp, std::move(policy), Options()) {}

DiftTracker::DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy, Options options)
    : interp_(interp),
      policy_(std::move(policy)),
      pool_(&policy_->pool()),
      options_(options) {
  // Observability handles come from the interpreter's RuntimeContext, so a
  // tracker built on an isolated instance reports into that instance's sinks.
  RuntimeContext& context = interp->context();
  trace_recorder_ = &context.trace_recorder();
  profiler_ = &context.profiler();
  audit_ = &context.audit();
  obs::Metrics& metrics = context.metrics();
  metric_label_calls_ = metrics.GetCounter("dift.label_calls");
  metric_binary_ops_ = metrics.GetCounter("dift.binary_ops");
  metric_checks_ = metrics.GetCounter("dift.checks");
  metric_invokes_ = metrics.GetCounter("dift.invokes");
  metric_boxes_created_ = metrics.GetCounter("dift.boxes_created");
  metric_violations_ = metrics.GetCounter("dift.violations");
  metric_labeller_fn_evals_ = metrics.GetCounter("dift.labeller_fn_evals");
}

DiftTracker::~DiftTracker() {
  // The proxy traps installed on tracked objects capture `this`, and the
  // objects usually outlive the tracker (they live on in the interpreter's
  // environments). Clear the traps so no dangling tracker pointer can ever
  // fire, and release the anchors eagerly so the tracker stops pinning object
  // graphs — anchored objects can reach closure environments and, through
  // them, the `__dift` bridge object whose natives point back here.
  store_.ForEach([](LabelStore::Entry& entry) {
    if (entry.proxied && entry.anchor.IsObject()) {
      Object& object = *entry.anchor.AsObject();
      object.set_trap = nullptr;
      object.delete_trap = nullptr;
    }
    entry.anchor = Value();
  });
  // Deregister from the fused-ISA dispatch (the interpreter outlives the
  // tracker everywhere in the codebase — see AppRuntime's member order).
  if (interp_->dift_hook() == this) {
    interp_->set_dift_hook(nullptr);
  }
}

void DiftTracker::LabelStore::Grow() {
  std::vector<Entry> old = std::move(slots_);
  slots_.assign(old.size() * 2, Entry{});
  size_t mask = slots_.size() - 1;
  for (Entry& entry : old) {
    if (entry.key == nullptr) {
      continue;
    }
    size_t i = Hash(entry.key) & mask;
    while (slots_[i].key != nullptr) {
      i = (i + 1) & mask;
    }
    slots_[i] = std::move(entry);
  }
}

void DiftTracker::PublishMetrics() {
  // The per-op paths bump plain uint64 fields (they are on the §6.2 hot path
  // where even a relaxed atomic shows up in bench_micro_dift); this flushes
  // the deltas accumulated since the previous publish.
  metric_label_calls_->Increment(stats_.label_calls - published_.label_calls);
  metric_binary_ops_->Increment(stats_.binary_ops - published_.binary_ops);
  metric_checks_->Increment(stats_.checks - published_.checks);
  metric_invokes_->Increment(stats_.invokes - published_.invokes);
  metric_boxes_created_->Increment(stats_.boxes_created - published_.boxes_created);
  metric_violations_->Increment(stats_.violations - published_.violations);
  metric_labeller_fn_evals_->Increment(stats_.labeller_fn_evals -
                                       published_.labeller_fn_evals);
  published_ = stats_;
}

const DiftTracker::LabelOrigin* DiftTracker::OriginOf(LabelId id) const {
  auto it = label_origins_.find(id);
  return it == label_origins_.end() ? nullptr : &it->second;
}

void DiftTracker::RecordOrigins(LabelSetRef labels, const std::string& labeller_name) {
  if (!options_.record_provenance || labels == kEmptyLabelSetRef) {
    return;
  }
  for (LabelId id : pool_->Ids(labels)) {
    auto [it, inserted] = label_origins_.try_emplace(id);
    if (!inserted) {
      continue;  // first attachment wins: that is where the label came from
    }
    it->second.labeller = labeller_name;
    it->second.trace_id = trace_recorder_->current_trace();
    it->second.node = trace_recorder_->OriginOf(it->second.trace_id);
    it->second.seq = ++origin_seq_;
    it->second.time = interp_->VirtualNow();
  }
}

// --- label plumbing ----------------------------------------------------------

LabelSetRef DiftTracker::GetLabelRef(const Value& v) const {
  if (v.IsObject()) {
    // Boxes carry their labels inline (they are tracker-created temporaries;
    // going through the store would accumulate one dead entry per boxed
    // result). The handle is only meaningful against the pool that wrote it.
    const Object* obj = v.AsObject().get();
    if (obj->is_box && obj->box_label_pool == pool_) {
      return obj->box_labels;
    }
  }
  const void* key = v.IdentityKey();
  if (key == nullptr) {
    return kEmptyLabelSetRef;
  }
  const LabelStore::Entry* entry = store_.Find(key);
  return entry == nullptr ? kEmptyLabelSetRef : entry->labels;
}

void DiftTracker::AttachLabelRef(const Value& v, LabelSetRef labels) {
  const void* key = v.IdentityKey();
  if (key == nullptr || labels == kEmptyLabelSetRef) {
    return;
  }
  if (v.IsObject()) {
    Object* obj = v.AsObject().get();
    if (obj->is_box &&
        (obj->box_label_pool == nullptr || obj->box_label_pool == pool_)) {
      obj->box_label_pool = pool_;
      LabelSetRef merged = pool_->Union(obj->box_labels, labels);
      if (merged != obj->box_labels) {
        obj->box_labels = merged;
        ++mutation_epoch_;  // deep-label memo entries may now be stale
      }
      return;
    }
  }
  LabelStore::Entry& entry = store_.FindOrInsert(key);
  if (entry.anchor.IsUndefined()) {
    entry.anchor = v;
  }
  LabelSetRef merged = pool_->Union(entry.labels, labels);
  if (merged != entry.labels) {
    entry.labels = merged;
    ++mutation_epoch_;  // deep-label memo entries may now be stale
  }
}

void DiftTracker::DeepLabelInto(const Value& v, LabelSetRef* out, int depth) const {
  if (depth < 0) {
    return;
  }
  if (v.IsObject() && v.AsObject()->is_box) {
    // A box carries exactly one value-type payload: its inline labels are
    // the whole contribution, no visited-set bookkeeping needed (a value
    // payload cannot cycle).
    *out = pool_->Union(*out, GetLabelRef(v));
    return;
  }
  const void* key = v.IdentityKey();
  if (key != nullptr) {
    if (!deep_visited_.insert(key).second) {
      return;
    }
    const LabelStore::Entry* entry = store_.Find(key);
    if (entry != nullptr && entry->labels != kEmptyLabelSetRef) {
      *out = pool_->Union(*out, entry->labels);
    }
  }
  if (v.IsObject()) {
    const ObjectPtr& obj = v.AsObject();
    for (const auto& [prop_key, prop_value] : obj->properties) {
      (void)prop_key;
      DeepLabelInto(prop_value, out, depth - 1);
    }
  } else if (v.IsArray()) {
    for (const Value& element : v.AsArray()->elements) {
      DeepLabelInto(element, out, depth - 1);
    }
  }
}

LabelSetRef DiftTracker::DeepLabelRef(const Value& v, int max_depth) const {
  if (v.IsObject() && v.AsObject()->is_box) {
    // A box wraps one value-type payload: its labels are the whole deep
    // union. Skip the memo — the inline read is cheaper than the probe.
    return GetLabelRef(v);
  }
  const void* key = v.IdentityKey();
  if (key == nullptr) {
    return kEmptyLabelSetRef;  // value types carry labels only via boxes
  }
  // The memo is valid for exactly one combined epoch: any label-map mutation
  // (tracker side) or heap shape/allocation change (interpreter side, see
  // HeapWriteEpoch) could alter a deep union or recycle an identity pointer.
  uint64_t epoch = mutation_epoch_ + HeapWriteEpoch();
  if (deep_memo_epoch_ != epoch) {
    deep_memo_.clear();
    deep_memo_epoch_ = epoch;
  }
  // Identity pointers never use the top byte (canonical user-space
  // addresses), so depth fits there without colliding two keys.
  uint64_t memo_key =
      reinterpret_cast<uint64_t>(key) ^ (static_cast<uint64_t>(max_depth) << 56);
  auto it = deep_memo_.find(memo_key);
  if (it != deep_memo_.end()) {
    ++stats_.deep_label_memo_hits;
    return it->second;
  }
  deep_visited_.clear();  // keeps its buckets: no per-walk allocation
  LabelSetRef out = kEmptyLabelSetRef;
  DeepLabelInto(v, &out, max_depth);
  deep_memo_.emplace(memo_key, out);
  return out;
}

LabelSet DiftTracker::GetLabel(const Value& v) const {
  return pool_->Materialize(GetLabelRef(v));
}

LabelSet DiftTracker::DeepLabel(const Value& v, int max_depth) const {
  return pool_->Materialize(DeepLabelRef(v, max_depth));
}

void DiftTracker::AttachLabel(const Value& v, const LabelSet& labels) {
  AttachLabelRef(v, pool_->Intern(labels));
}

void DiftTracker::InstallProxy(const ObjectPtr& object) {
  if (object->set_trap) {
    return;  // already proxied
  }
  // Dynamic-property support (§4.4): when a property is created or updated on
  // a tracked object, the property value's label is folded into the object's
  // own label so sink checks on the container observe it. Deletion keeps the
  // container label (conservative — labels only grow, as in the paper).
  //
  // Anchor the object now: the trap is keyed by identity pointer, and an
  // unanchored key could be recycled by a later allocation.
  LabelStore::Entry& entry = store_.FindOrInsert(object.get());
  if (entry.anchor.IsUndefined()) {
    entry.anchor = Value(object);
  }
  entry.proxied = true;
  DiftTracker* tracker = this;
  // weak_ptr, not ObjectPtr: a strong capture would make the object retain
  // its own trap retain the object — an uncollectable cycle.
  std::weak_ptr<Object> weak = object;
  object->set_trap = [tracker, weak](Object&, const std::string&, const Value& value) {
    LabelSetRef value_labels = tracker->GetLabelRef(value);
    if (value_labels == kEmptyLabelSetRef) {
      return;
    }
    if (ObjectPtr self = weak.lock()) {
      tracker->AttachLabelRef(Value(std::move(self)), value_labels);
    }
  };
  object->delete_trap = [](Object&, const std::string&) {};
}

// --- labeller evaluation -----------------------------------------------------

Result<FunctionPtr> DiftTracker::CompileLabelFn(const LabellerSpec* spec) {
  auto cached = compiled_fns_.find(spec);
  if (cached != compiled_fns_.end()) {
    return cached->second;
  }
  TURNSTILE_ASSIGN_OR_RETURN(program, ParseProgram(spec->fn_source, "<labeller>"));
  if (program.root->children.size() != 1 ||
      program.root->children[0]->kind != NodeKind::kExprStmt) {
    return PolicyError("label function must be a single expression: " + spec->fn_source);
  }
  // Resolve so the compiled closure uses slot-indexed frames like any other
  // program code (labellers run on every labelled value).
  ResolveProgram(program);
  TURNSTILE_ASSIGN_OR_RETURN(
      completion,
      interp_->EvalExpression(program.root->children[0]->children[0], interp_->global_env()));
  if (completion.IsAbrupt() || !completion.value.IsFunction()) {
    return PolicyError("label function did not evaluate to a function: " + spec->fn_source);
  }
  // Keep the AST alive for the closure's lifetime by retaining the function.
  compiled_fns_[spec] = completion.value.AsFunction();
  return completion.value.AsFunction();
}

Result<LabelSetRef> DiftTracker::LabelsFromValue(const Value& v) {
  Value unboxed = UnboxDeep(v);
  if (unboxed.IsNullish()) {
    return kEmptyLabelSetRef;  // labeller declined to label
  }
  std::vector<LabelId> ids;
  if (unboxed.IsArray()) {
    ids.reserve(unboxed.AsArray()->elements.size());
    for (const Value& element : unboxed.AsArray()->elements) {
      Value e = UnboxDeep(element);
      if (!e.IsNullish()) {
        ids.push_back(policy_->space().Intern(e.ToDisplayString()));
      }
    }
  } else {
    ids.push_back(policy_->space().Intern(unboxed.ToDisplayString()));
  }
  return pool_->Intern(std::move(ids));
}

LabelSetRef DiftTracker::ConstLabels(const LabellerSpec* spec) {
  auto it = const_label_refs_.find(spec);
  if (it != const_label_refs_.end()) {
    return it->second;
  }
  std::vector<LabelId> ids;
  ids.reserve(spec->const_labels.size());
  for (const std::string& name : spec->const_labels) {
    ids.push_back(policy_->space().Intern(name));
  }
  LabelSetRef ref = pool_->Intern(std::move(ids));
  const_label_refs_[spec] = ref;
  return ref;
}

Result<Value> DiftTracker::ApplySpec(const LabellerSpec* spec, Value target,
                                     LabelSetRef* out_labels,
                                     const std::string& labeller_name) {
  switch (spec->kind) {
    case LabellerSpec::Kind::kConst: {
      LabelSetRef labels = ConstLabels(spec);
      RecordOrigins(labels, labeller_name);
      *out_labels = pool_->Union(*out_labels, labels);
      if (target.IsValueType()) {
        ObjectPtr box = MakeObject();
        box->is_box = true;
        box->box_payload = target;
        ++stats_.boxes_created;
        Value boxed(box);
        AttachLabelRef(boxed, labels);
        return boxed;
      }
      AttachLabelRef(target, labels);
      if (target.IsObject()) {
        InstallProxy(target.AsObject());
      }
      return target;
    }
    case LabellerSpec::Kind::kFn: {
      TURNSTILE_ASSIGN_OR_RETURN(fn, CompileLabelFn(spec));
      ++stats_.labeller_fn_evals;
      TURNSTILE_ASSIGN_OR_RETURN(
          result, interp_->CallFunction(fn, Value::Undefined(), {UnboxDeep(target)}));
      TURNSTILE_ASSIGN_OR_RETURN(labels, LabelsFromValue(result));
      RecordOrigins(labels, labeller_name);
      *out_labels = pool_->Union(*out_labels, labels);
      if (target.IsValueType()) {
        if (labels == kEmptyLabelSetRef) {
          return target;  // nothing to track
        }
        ObjectPtr box = MakeObject();
        box->is_box = true;
        box->box_payload = target;
        ++stats_.boxes_created;
        Value boxed(box);
        AttachLabelRef(boxed, labels);
        return boxed;
      }
      AttachLabelRef(target, labels);
      if (target.IsObject()) {
        InstallProxy(target.AsObject());
      }
      return target;
    }
    case LabellerSpec::Kind::kMap: {
      Value unboxed = Unbox(target);
      if (!unboxed.IsArray()) {
        return target;  // $map on a non-array is a no-op (value may be absent)
      }
      LabelSetRef element_union = kEmptyLabelSetRef;
      auto& elements = unboxed.AsArray()->elements;
      for (Value& element : elements) {
        LabelSetRef element_labels = kEmptyLabelSetRef;
        TURNSTILE_ASSIGN_OR_RETURN(
            replacement,
            ApplySpec(spec->element.get(), element, &element_labels, labeller_name));
        element = replacement;
        element_union = pool_->Union(element_union, element_labels);
      }
      AttachLabelRef(unboxed, element_union);
      *out_labels = pool_->Union(*out_labels, element_union);
      return target;
    }
    case LabellerSpec::Kind::kObject: {
      Value unboxed = Unbox(target);
      if (!unboxed.IsObject()) {
        return target;
      }
      const ObjectPtr& obj = unboxed.AsObject();
      LabelSetRef field_union = kEmptyLabelSetRef;
      for (const auto& [field, sub_spec] : spec->fields) {
        if (sub_spec->kind == LabellerSpec::Kind::kInvoke) {
          // Call-time labeller for obj.field(...): registered, not evaluated.
          invoke_labellers_[{obj.get(), InternAtom(field)}] = {sub_spec.get(),
                                                              labeller_name};
          continue;
        }
        Value field_value = obj->Get(field);
        if (field_value.IsUndefined()) {
          continue;
        }
        LabelSetRef field_labels = kEmptyLabelSetRef;
        TURNSTILE_ASSIGN_OR_RETURN(
            replacement, ApplySpec(sub_spec.get(), field_value, &field_labels, labeller_name));
        if (replacement.IdentityKey() != field_value.IdentityKey() ||
            replacement.IsObject() != field_value.IsObject()) {
          obj->Set(field, replacement);
        }
        field_union = pool_->Union(field_union, field_labels);
      }
      AttachLabelRef(unboxed, field_union);
      InstallProxy(obj);
      *out_labels = pool_->Union(*out_labels, field_union);
      return target;
    }
    case LabellerSpec::Kind::kInvoke: {
      // Top-level $invoke: applies to direct calls of the target function or
      // to any method of the target object (kAtomEmpty = wildcard method).
      const void* key = target.IdentityKey();
      if (key != nullptr) {
        invoke_labellers_[{key, kAtomEmpty}] = {spec, labeller_name};
      }
      return target;
    }
  }
  return target;
}

Result<Value> DiftTracker::Label(Value target, const std::string& labeller_name) {
  ++stats_.label_calls;
  // Monitor-time span: everything under a __dift.* op bills to the monitor
  // side of the overhead split (invoke's app-callee window excepted).
  obs::ScopedProfileSpan profile_span;
  if (profiler_->enabled()) {
    profile_span = obs::ScopedProfileSpan(profiler_, obs::SpanKind::kDiftLabel,
                                          "__dift.label:" + labeller_name, /*monitor=*/true);
  }
  const LabellerSpec* spec = policy_->FindLabeller(labeller_name);
  if (spec == nullptr) {
    return PolicyError("unknown labeller '" + labeller_name + "'");
  }
  // Audit needs the target's label set *before* the labeller runs: a $const
  // labeller firing on an already-labelled value is the declassify/endorse
  // idiom (see policy.h), and that distinction is exactly prior != empty.
  LabelSetRef prior = kEmptyLabelSetRef;
  if (audit_->enabled()) {
    prior = GetLabelRef(target);
  }
  LabelSetRef labels = kEmptyLabelSetRef;
  TURNSTILE_ASSIGN_OR_RETURN(result, ApplySpec(spec, std::move(target), &labels,
                                               labeller_name));
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kDiftLabel, labeller_name, pool_->Render(labels),
                            interp_->VirtualNow());
  }
  if (audit_->enabled() && labels != kEmptyLabelSetRef) {
    obs::AuditEvent event;
    event.kind = (spec->kind == LabellerSpec::Kind::kConst && prior != kEmptyLabelSetRef)
                     ? obs::AuditKind::kDeclassify
                     : obs::AuditKind::kLabelAttach;
    event.subject = labeller_name;
    event.data = prior;
    event.out = labels;
    event.labels = pool_->Render(labels);
    audit_->Record(std::move(event));
  }
  return result;
}

// --- operations --------------------------------------------------------------

Result<Value> DiftTracker::BinaryOp(const std::string& op, const Value& left,
                                    const Value& right) {
  ++stats_.binary_ops;
  obs::ScopedProfileSpan profile_span;
  if (profiler_->enabled()) {
    profile_span = obs::ScopedProfileSpan(profiler_, obs::SpanKind::kDiftBinaryOp,
                                          "__dift.binaryOp:" + op, /*monitor=*/true);
  }
  return BinaryOpCore(op, BinaryOpFromString(op), left, right);
}

Result<Value> DiftTracker::FusedBinary(const std::string& spelling, turnstile::BinaryOp op,
                                       const Value& left, const Value& right) {
  ++stats_.binary_ops;
  obs::ScopedMonitorAccounting monitor_window(profiler_);
  return BinaryOpCore(spelling, op, left, right);
}

Result<Value> DiftTracker::BinaryOpCore(const std::string& spelling, turnstile::BinaryOp op,
                                        const Value& left, const Value& right) {
  LabelSetRef left_ref = GetLabelRef(left);
  LabelSetRef right_ref = GetLabelRef(right);
  LabelSetRef labels = pool_->Union(left_ref, right_ref);
  // Cheap stack check first: the unlabelled fast path must not even touch
  // the recorder's cache line.
  if (labels != kEmptyLabelSetRef && trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kDiftBinaryOp, spelling, pool_->Render(labels),
                            interp_->VirtualNow());
  }
  if (labels != kEmptyLabelSetRef && audit_->enabled()) {
    obs::AuditEvent event;
    event.kind = obs::AuditKind::kMerge;
    event.subject = spelling;
    event.data = left_ref;
    event.receiver = right_ref;
    event.out = labels;
    event.labels = pool_->Render(labels);
    audit_->Record(std::move(event));
  }
  if (op == turnstile::BinaryOp::kInvalid) {
    return UnimplementedError("binary operator " + spelling);
  }
  TURNSTILE_ASSIGN_OR_RETURN(completion, interp_->EvalBinaryOp(op, left, right));
  if (completion.IsAbrupt()) {
    return RuntimeError("binaryOp threw: " + completion.value.ToDisplayString());
  }
  Value result = completion.value;
  if (labels == kEmptyLabelSetRef) {
    return result;
  }
  if (result.IsValueType()) {
    ObjectPtr box = MakeObject();
    box->is_box = true;
    box->box_payload = result;
    ++stats_.boxes_created;
    result = Value(box);
  }
  AttachLabelRef(result, labels);
  return result;
}

void DiftTracker::RecordViolation(const std::string& sink, LabelSetRef data,
                                  LabelSetRef receiver) {
  ++stats_.violations;
  Violation violation;
  violation.time = interp_->VirtualNow();
  violation.sink = sink;
  violation.data_labels = pool_->Render(data);
  violation.receiver_labels = pool_->Render(receiver);
  violation.trace_id = trace_recorder_->current_trace();
  violation.origin_node = trace_recorder_->OriginOf(violation.trace_id);

  // Provenance chain, oldest first: where each offending label came from ...
  for (LabelId id : pool_->Ids(data)) {
    const LabelOrigin* origin = OriginOf(id);
    if (origin == nullptr) {
      continue;
    }
    obs::TraceEvent event;
    event.trace_id = origin->trace_id;
    event.seq = origin->seq;
    event.kind = obs::SpanKind::kDiftLabel;
    event.vtime = origin->time;
    event.subject = origin->labeller;
    event.detail = "attached '" + policy_->space().NameOf(id) + "'" +
                   (origin->node.empty() ? "" : " at node '" + origin->node + "'");
    violation.provenance.push_back(std::move(event));
  }
  // ... then the recorded journey of the violating message ...
  if (trace_recorder_->enabled() && violation.trace_id != 0) {
    for (obs::TraceEvent& event : trace_recorder_->EventsForTrace(violation.trace_id)) {
      violation.provenance.push_back(std::move(event));
    }
  }
  // ... ending at the sink that rejected the flow.
  obs::TraceEvent at_sink;
  at_sink.trace_id = violation.trace_id;
  at_sink.kind = obs::SpanKind::kViolation;
  at_sink.vtime = violation.time;
  at_sink.subject = sink;
  at_sink.detail = violation.data_labels + " cannot flow to " + violation.receiver_labels;
  violation.provenance.push_back(at_sink);
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kViolation, sink, at_sink.detail,
                            violation.time);
  }

  TURNSTILE_LOG(Warning) << "IFC violation at " << sink << ": "
                         << violation.data_labels << " cannot flow to "
                         << violation.receiver_labels;
  violations_.push_back(std::move(violation));
  PublishMetrics();  // violations are rare: keep the registry fresh for free
}

const std::string& DiftTracker::CheckDetail(LabelSetRef data, LabelSetRef receiver) {
  uint64_t key = (static_cast<uint64_t>(data) << 32) | receiver;
  auto it = check_detail_cache_.find(key);
  if (it != check_detail_cache_.end()) {
    return it->second;
  }
  std::string detail = pool_->Render(data) + " vs " + pool_->Render(receiver);
  return check_detail_cache_.emplace(key, std::move(detail)).first->second;
}

void DiftTracker::RecordFlowAudit(const std::string& sink, LabelSetRef data,
                                  LabelSetRef receiver, bool allowed, std::string rule) {
  obs::AuditEvent event;
  event.kind = obs::AuditKind::kFlowCheck;
  event.allowed = allowed;
  event.subject = sink;
  event.data = data;
  event.receiver = receiver;
  event.labels = CheckDetail(data, receiver);
  event.rule = std::move(rule);
  audit_->Record(std::move(event));
}

Result<bool> DiftTracker::Check(const Value& data, const Value& receiver,
                                const std::string& sink_name) {
  ++stats_.checks;
  obs::ScopedProfileSpan profile_span;
  if (profiler_->enabled()) {
    profile_span = obs::ScopedProfileSpan(profiler_, obs::SpanKind::kDiftCheck,
                                          "__dift.check:" + sink_name, /*monitor=*/true);
  }
  return CheckCore(data, receiver, sink_name);
}

Result<Value> DiftTracker::FusedCheck(const Value& data, const Value& receiver) {
  ++stats_.checks;
  obs::ScopedMonitorAccounting monitor_window(profiler_);
  // "check" is the sink name the `__dift.check` native hardcodes.
  TURNSTILE_ASSIGN_OR_RETURN(allowed, CheckCore(data, receiver, "check"));
  return Value(allowed);
}

Result<bool> DiftTracker::CheckCore(const Value& data, const Value& receiver,
                                    const std::string& sink_name) {
  LabelSetRef data_labels = DeepLabelRef(data);
  LabelSetRef receiver_labels = GetLabelRef(receiver);
  if (trace_recorder_->enabled()) {
    // The detail string is memoized per handle pair: a traced run pays one
    // flat lookup per check, not a label-name render.
    trace_recorder_->Record(obs::SpanKind::kDiftCheck, sink_name,
                            CheckDetail(data_labels, receiver_labels),
                            interp_->VirtualNow());
  }
  if (data_labels == kEmptyLabelSetRef) {
    if (audit_->enabled()) {
      RecordFlowAudit(sink_name, data_labels, receiver_labels, true, "empty-data");
    }
    return true;
  }
  if (receiver_labels == kEmptyLabelSetRef) {
    if (options_.strict_unlabeled_receivers) {
      if (audit_->enabled()) {
        RecordFlowAudit(sink_name, data_labels, receiver_labels, false,
                        "strict-unlabeled-receiver");
      }
      RecordViolation(sink_name, data_labels, receiver_labels);
      return false;
    }
    if (audit_->enabled()) {
      RecordFlowAudit(sink_name, data_labels, receiver_labels, true, "unlabeled-receiver");
    }
    return true;
  }
  const std::string* rule = nullptr;
  bool allowed = policy_->rules().CanFlowSetExplained(
      data_labels, receiver_labels, *pool_, audit_->enabled() ? &rule : nullptr);
  if (audit_->enabled()) {
    RecordFlowAudit(sink_name, data_labels, receiver_labels, allowed,
                    rule != nullptr ? *rule : "");
  }
  if (!allowed) {
    RecordViolation(sink_name, data_labels, receiver_labels);
  }
  return allowed;
}

Result<Value> DiftTracker::Invoke(const Value& target, const std::string& func,
                                  std::vector<Value> args) {
  ++stats_.invokes;
  obs::ScopedProfileSpan profile_span;
  if (profiler_->enabled()) {
    profile_span = obs::ScopedProfileSpan(profiler_, obs::SpanKind::kDiftInvoke,
                                          "__dift.invoke:" + func, /*monitor=*/true);
  }
  return InvokeCore(target, func, std::move(args));
}

Result<Value> DiftTracker::FusedInvoke(const Value& target, const std::string& func,
                                       std::vector<Value> args) {
  ++stats_.invokes;
  obs::ScopedMonitorAccounting monitor_window(profiler_);
  return InvokeCore(target, func, std::move(args));
}

Result<Value> DiftTracker::InvokeCore(const Value& target, const std::string& func,
                                      std::vector<Value> args) {
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kDiftInvoke, func, "", interp_->VirtualNow());
  }
  TURNSTILE_ASSIGN_OR_RETURN(fn_value, interp_->GetProperty(target, func));
  Value fn_unboxed = Unbox(fn_value);
  if (!fn_unboxed.IsFunction()) {
    return Interpreter::TypeError("invoke: '" + func + "' is not a function");
  }

  // Receiver label: a registered $invoke labeller wins; otherwise any label
  // already attached to the receiver object or the function itself. The
  // method name probe is a non-inserting atom lookup — a name that was never
  // interned anywhere cannot have been registered.
  LabelSetRef receiver_labels = kEmptyLabelSetRef;
  bool receiver_has_labeller = false;
  const LabellerSpec* invoke_spec = nullptr;
  const std::string* invoke_labeller_name = nullptr;
  // Policies without $invoke labellers (most of the corpus) skip the atom
  // lookup and the three map probes entirely.
  if (!invoke_labellers_.empty()) {
    const void* target_key = target.IdentityKey();
    Atom func_atom = AtomTable::Global().Find(func);
    auto it = invoke_labellers_.end();
    if (target_key != nullptr && func_atom != kAtomInvalid) {
      it = invoke_labellers_.find({target_key, func_atom});
    }
    if (it == invoke_labellers_.end()) {
      it = invoke_labellers_.find({fn_unboxed.IdentityKey(), kAtomEmpty});
    }
    if (it == invoke_labellers_.end() && target_key != nullptr) {
      it = invoke_labellers_.find({target_key, kAtomEmpty});
    }
    if (it != invoke_labellers_.end()) {
      invoke_spec = it->second.spec;
      invoke_labeller_name = &it->second.labeller_name;
    }
  }
  if (invoke_spec != nullptr) {
    receiver_has_labeller = true;
    TURNSTILE_ASSIGN_OR_RETURN(label_fn, CompileLabelFn(invoke_spec));
    ++stats_.labeller_fn_evals;
    std::vector<Value> unboxed_args;
    unboxed_args.reserve(args.size());
    for (const Value& arg : args) {
      unboxed_args.push_back(UnboxDeep(arg));
    }
    TURNSTILE_ASSIGN_OR_RETURN(
        label_value,
        interp_->CallFunction(label_fn, Value::Undefined(),
                              {UnboxDeep(target), Value(MakeArray(unboxed_args))}));
    TURNSTILE_ASSIGN_OR_RETURN(labels, LabelsFromValue(label_value));
    RecordOrigins(labels, *invoke_labeller_name);
    receiver_labels = labels;
    if (audit_->enabled()) {
      obs::AuditEvent event;
      event.kind = obs::AuditKind::kInvokeLabeller;
      event.subject = *invoke_labeller_name + "@" + func;
      event.out = receiver_labels;
      event.labels = pool_->Render(receiver_labels);
      audit_->Record(std::move(event));
    }
  } else {
    receiver_labels = pool_->Union(GetLabelRef(target), GetLabelRef(fn_value));
  }

  // Data label: union over all arguments. Containers tracked by the proxy
  // mechanism already carry their children's labels, so a depth-2 walk
  // suffices to cover explicitly nested payloads (msg.payload) without
  // scanning whole object graphs on every call — except for *untracked*
  // large containers, which exhaustive instrumentation pays for (§6.2).
  LabelSetRef data_labels = kEmptyLabelSetRef;
  for (const Value& arg : args) {
    data_labels = pool_->Union(data_labels, DeepLabelRef(arg, 2));
  }

  bool allowed = true;
  if (data_labels != kEmptyLabelSetRef) {
    if (receiver_labels == kEmptyLabelSetRef) {
      allowed = !(receiver_has_labeller || options_.strict_unlabeled_receivers);
      if (audit_->enabled()) {
        RecordFlowAudit(func, data_labels, receiver_labels, allowed,
                        allowed ? "unlabeled-receiver"
                                : (receiver_has_labeller ? "labeller-declined-receiver"
                                                         : "strict-unlabeled-receiver"));
      }
    } else {
      const std::string* rule = nullptr;
      allowed = policy_->rules().CanFlowSetExplained(
          data_labels, receiver_labels, *pool_, audit_->enabled() ? &rule : nullptr);
      if (audit_->enabled()) {
        RecordFlowAudit(func, data_labels, receiver_labels, allowed,
                        rule != nullptr ? *rule : "");
      }
    }
  }
  if (!allowed) {
    RecordViolation(func, data_labels, receiver_labels);
    if (options_.mode == Options::Mode::kEnforce) {
      return Value::Undefined();
    }
  }

  // Sink natives receive unwrapped values ("unwrapped upon writing to a sink
  // object", §4.4); everything else — in-language callees and utility natives
  // such as Array.push — keeps the boxes so tracking continues.
  std::vector<Value> call_args;
  if (fn_unboxed.AsFunction()->is_io_sink) {
    call_args.reserve(args.size());
    if (audit_->enabled()) {
      // The unwrap point: labelled data is about to leave the managed world.
      obs::AuditEvent event;
      event.kind = obs::AuditKind::kSinkWrite;
      event.subject = func;
      event.data = data_labels;
      event.receiver = receiver_labels;
      if (data_labels != kEmptyLabelSetRef) {
        event.labels = pool_->Render(data_labels);
      }
      audit_->Record(std::move(event));
    }
    for (Value& arg : args) {
      call_args.push_back(UnboxDeep(arg));
    }
  } else {
    call_args = std::move(args);
  }
  // The dispatched callee is the *app's* function: its wall time must not be
  // billed to the monitor even though this frame is a __dift.invoke span.
  obs::ScopedAppAccounting app_window(profiler_);
  TURNSTILE_ASSIGN_OR_RETURN(
      result, interp_->CallFunction(fn_unboxed.AsFunction(), target, std::move(call_args)));
  app_window.End();
  // Fig. 5 (invoke): the returned value carries the union of argument labels.
  if (data_labels != kEmptyLabelSetRef) {
    if (result.IsValueType()) {
      if (!result.IsNullish()) {
        ObjectPtr box = MakeObject();
        box->is_box = true;
        box->box_payload = result;
        ++stats_.boxes_created;
        result = Value(box);
        AttachLabelRef(result, data_labels);
      }
    } else {
      AttachLabelRef(result, data_labels);
    }
  }
  return result;
}

// --- exhaustive tracking -----------------------------------------------------

Value DiftTracker::Track(Value v) {
  if (v.IsValueType()) {
    if (v.IsNullish() || v.IsBool()) {
      return v;  // nothing worth boxing
    }
    ObjectPtr box = MakeObject();
    box->is_box = true;
    box->box_payload = std::move(v);
    ++stats_.boxes_created;
    return Value(box);
  }
  // Register reference types in the label map with an empty label set so the
  // tracker pays the bookkeeping cost of managing them.
  const void* key = v.IdentityKey();
  if (key != nullptr) {
    LabelStore::Entry& entry = store_.FindOrInsert(key);
    if (entry.anchor.IsUndefined()) {
      entry.anchor = v;
    }
    if (v.IsObject() && !v.AsObject()->is_box) {
      InstallProxy(v.AsObject());
    }
  }
  return v;
}

Value DiftTracker::TrackDeep(Value v, int depth) {
  if (depth <= 0) {
    return Track(std::move(v));
  }
  if (v.IsObject() && !v.AsObject()->is_box) {
    const ObjectPtr& obj = v.AsObject();
    for (Atom prop_key : obj->insertion_order) {
      auto it = obj->properties.find(prop_key);
      if (it == obj->properties.end() || it->second.IsFunction()) {
        continue;
      }
      it->second = TrackDeep(it->second, depth - 1);
    }
    return Track(std::move(v));
  }
  if (v.IsArray()) {
    for (Value& element : v.AsArray()->elements) {
      if (!element.IsFunction()) {
        element = TrackDeep(element, depth - 1);
      }
    }
    return Track(std::move(v));
  }
  return Track(std::move(v));
}

// --- MiniScript bridge -------------------------------------------------------

void DiftTracker::Install() {
  ObjectPtr dift = MakeObject();
  dift->debug_tag = "__dift";
  DiftTracker* tracker = this;

  dift->Set("label", Value(MakeNativeFunction(
      "__dift.label",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->Label(ArgAt(args, 0), UnboxDeep(ArgAt(args, 1)).ToDisplayString());
      })));

  dift->Set("binaryOp", Value(MakeNativeFunction(
      "__dift.binaryOp",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->BinaryOp(UnboxDeep(ArgAt(args, 0)).ToDisplayString(), ArgAt(args, 1),
                                 ArgAt(args, 2));
      })));

  dift->Set("check", Value(MakeNativeFunction(
      "__dift.check",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        TURNSTILE_ASSIGN_OR_RETURN(
            allowed, tracker->Check(ArgAt(args, 0), ArgAt(args, 1), "check"));
        return Value(allowed);
      })));

  dift->Set("invoke", Value(MakeNativeFunction(
      "__dift.invoke",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value args_array = ArgAt(args, 2);
        std::vector<Value> call_args;
        if (args_array.IsArray()) {
          call_args = args_array.AsArray()->elements;
        }
        return tracker->Invoke(ArgAt(args, 0), UnboxDeep(ArgAt(args, 1)).ToDisplayString(),
                               std::move(call_args));
      })));

  dift->Set("violationCount", Value(MakeNativeFunction(
      "__dift.violationCount",
      [tracker](Interpreter&, const Value&, std::vector<Value>&) -> Result<Value> {
        return Value(static_cast<double>(tracker->violations_.size()));
      })));

  dift->Set("labelsOf", Value(MakeNativeFunction(
      "__dift.labelsOf",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        LabelSetRef labels = tracker->DeepLabelRef(ArgAt(args, 0));
        std::vector<Value> names;
        for (LabelId id : tracker->pool_->Ids(labels)) {
          names.push_back(Value(tracker->policy_->space().NameOf(id)));
        }
        return Value(MakeArray(std::move(names)));
      })));

  dift->Set("track", Value(MakeNativeFunction(
      "__dift.track",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->Track(ArgAt(args, 0));
      })));

  dift->Set("trackDeep", Value(MakeNativeFunction(
      "__dift.trackDeep",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->TrackDeep(ArgAt(args, 0));
      })));

  dift->Set("unwrap", Value(MakeNativeFunction(
      "__dift.unwrap",
      [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return UnboxDeep(ArgAt(args, 0));
      })));

  interp_->DefineGlobal("__dift", Value(dift));
  // Register as the fused-ISA hook: the labelled opcodes (src/vm/bytecode.h)
  // now call straight into this tracker instead of through the bridge object.
  interp_->set_dift_hook(this);
}

}  // namespace turnstile
