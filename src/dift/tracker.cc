#include "src/dift/tracker.h"

#include <map>
#include <unordered_set>

#include "src/lang/parser.h"
#include "src/lang/resolve.h"
#include "src/support/logging.h"

namespace turnstile {

namespace {

Value ArgAt(const std::vector<Value>& args, size_t i) {
  return i < args.size() ? args[i] : Value::Undefined();
}
}  // namespace

DiftTracker::DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy)
    : DiftTracker(interp, std::move(policy), Options()) {}

DiftTracker::DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy, Options options)
    : interp_(interp), policy_(std::move(policy)), options_(options) {
  trace_recorder_ = &obs::TraceRecorder::Global();
  obs::Metrics& metrics = obs::Metrics::Global();
  metric_label_calls_ = metrics.GetCounter("dift.label_calls");
  metric_binary_ops_ = metrics.GetCounter("dift.binary_ops");
  metric_checks_ = metrics.GetCounter("dift.checks");
  metric_invokes_ = metrics.GetCounter("dift.invokes");
  metric_boxes_created_ = metrics.GetCounter("dift.boxes_created");
  metric_violations_ = metrics.GetCounter("dift.violations");
  metric_labeller_fn_evals_ = metrics.GetCounter("dift.labeller_fn_evals");
}

void DiftTracker::PublishMetrics() {
  // The per-op paths bump plain uint64 fields (they are on the §6.2 hot path
  // where even a relaxed atomic shows up in bench_micro_dift); this flushes
  // the deltas accumulated since the previous publish.
  metric_label_calls_->Increment(stats_.label_calls - published_.label_calls);
  metric_binary_ops_->Increment(stats_.binary_ops - published_.binary_ops);
  metric_checks_->Increment(stats_.checks - published_.checks);
  metric_invokes_->Increment(stats_.invokes - published_.invokes);
  metric_boxes_created_->Increment(stats_.boxes_created - published_.boxes_created);
  metric_violations_->Increment(stats_.violations - published_.violations);
  metric_labeller_fn_evals_->Increment(stats_.labeller_fn_evals -
                                       published_.labeller_fn_evals);
  published_ = stats_;
}

const DiftTracker::LabelOrigin* DiftTracker::OriginOf(LabelId id) const {
  auto it = label_origins_.find(id);
  return it == label_origins_.end() ? nullptr : &it->second;
}

void DiftTracker::RecordOrigins(const LabelSet& labels, const std::string& labeller_name) {
  if (!options_.record_provenance || labels.empty()) {
    return;
  }
  for (LabelId id : labels.ids()) {
    auto [it, inserted] = label_origins_.try_emplace(id);
    if (!inserted) {
      continue;  // first attachment wins: that is where the label came from
    }
    it->second.labeller = labeller_name;
    it->second.trace_id = trace_recorder_->current_trace();
    it->second.node = trace_recorder_->OriginOf(it->second.trace_id);
    it->second.seq = ++origin_seq_;
    it->second.time = interp_->VirtualNow();
  }
}

// --- label plumbing ----------------------------------------------------------

LabelSet DiftTracker::GetLabel(const Value& v) const {
  const void* key = v.IdentityKey();
  if (key == nullptr) {
    return LabelSet();
  }
  auto it = labels_.find(key);
  return it == labels_.end() ? LabelSet() : it->second;
}

void DiftTracker::AttachLabel(const Value& v, const LabelSet& labels) {
  const void* key = v.IdentityKey();
  if (key == nullptr || labels.empty()) {
    return;
  }
  label_anchors_.try_emplace(key, v);
  LabelSet& slot = labels_[key];
  slot.UnionWith(labels);
}

void DiftTracker::DeepLabelInto(const Value& v, LabelSet* out,
                                std::unordered_set<const void*>* visited, int depth) const {
  if (depth < 0) {
    return;
  }
  const void* key = v.IdentityKey();
  if (key != nullptr) {
    if (!visited->insert(key).second) {
      return;
    }
    auto it = labels_.find(key);
    if (it != labels_.end()) {
      out->UnionWith(it->second);
    }
  }
  if (v.IsObject()) {
    const ObjectPtr& obj = v.AsObject();
    if (obj->is_box) {
      DeepLabelInto(obj->box_payload, out, visited, depth);  // boxes are free
      return;
    }
    for (const auto& [prop_key, prop_value] : obj->properties) {
      (void)prop_key;
      DeepLabelInto(prop_value, out, visited, depth - 1);
    }
  } else if (v.IsArray()) {
    for (const Value& element : v.AsArray()->elements) {
      DeepLabelInto(element, out, visited, depth - 1);
    }
  }
}

LabelSet DiftTracker::DeepLabel(const Value& v, int max_depth) const {
  LabelSet out;
  std::unordered_set<const void*> visited;
  DeepLabelInto(v, &out, &visited, max_depth);
  return out;
}

void DiftTracker::InstallProxy(const ObjectPtr& object) {
  if (object->set_trap) {
    return;  // already proxied
  }
  // Dynamic-property support (§4.4): when a property is created or updated on
  // a tracked object, the property value's label is folded into the object's
  // own label so sink checks on the container observe it. Deletion keeps the
  // container label (conservative — labels only grow, as in the paper).
  DiftTracker* tracker = this;
  const void* object_key = object.get();
  object->set_trap = [tracker, object_key](Object&, const std::string&, const Value& value) {
    LabelSet value_labels = tracker->GetLabel(value);
    if (!value_labels.empty()) {
      tracker->labels_[object_key].UnionWith(value_labels);
    }
  };
  object->delete_trap = [](Object&, const std::string&) {};
}

// --- labeller evaluation -----------------------------------------------------

Result<FunctionPtr> DiftTracker::CompileLabelFn(const LabellerSpec* spec) {
  auto cached = compiled_fns_.find(spec);
  if (cached != compiled_fns_.end()) {
    return cached->second;
  }
  TURNSTILE_ASSIGN_OR_RETURN(program, ParseProgram(spec->fn_source, "<labeller>"));
  if (program.root->children.size() != 1 ||
      program.root->children[0]->kind != NodeKind::kExprStmt) {
    return PolicyError("label function must be a single expression: " + spec->fn_source);
  }
  // Resolve so the compiled closure uses slot-indexed frames like any other
  // program code (labellers run on every labelled value).
  ResolveProgram(program);
  TURNSTILE_ASSIGN_OR_RETURN(
      completion,
      interp_->EvalExpression(program.root->children[0]->children[0], interp_->global_env()));
  if (completion.IsAbrupt() || !completion.value.IsFunction()) {
    return PolicyError("label function did not evaluate to a function: " + spec->fn_source);
  }
  // Keep the AST alive for the closure's lifetime by retaining the function.
  compiled_fns_[spec] = completion.value.AsFunction();
  return completion.value.AsFunction();
}

Result<LabelSet> DiftTracker::LabelsFromValue(const Value& v) {
  LabelSet out;
  Value unboxed = UnboxDeep(v);
  if (unboxed.IsNullish()) {
    return out;  // labeller declined to label
  }
  if (unboxed.IsArray()) {
    for (const Value& element : unboxed.AsArray()->elements) {
      Value e = UnboxDeep(element);
      if (!e.IsNullish()) {
        out.Insert(policy_->space().Intern(e.ToDisplayString()));
      }
    }
    return out;
  }
  out.Insert(policy_->space().Intern(unboxed.ToDisplayString()));
  return out;
}

Result<Value> DiftTracker::ApplySpec(const LabellerSpec* spec, Value target,
                                     LabelSet* out_labels,
                                     const std::string& labeller_name) {
  switch (spec->kind) {
    case LabellerSpec::Kind::kConst: {
      LabelSet labels;
      for (const std::string& name : spec->const_labels) {
        labels.Insert(policy_->space().Intern(name));
      }
      RecordOrigins(labels, labeller_name);
      out_labels->UnionWith(labels);
      if (target.IsValueType()) {
        ObjectPtr box = MakeObject();
        box->is_box = true;
        box->box_payload = target;
        ++stats_.boxes_created;
        Value boxed(box);
        AttachLabel(boxed, labels);
        return boxed;
      }
      AttachLabel(target, labels);
      if (target.IsObject()) {
        InstallProxy(target.AsObject());
      }
      return target;
    }
    case LabellerSpec::Kind::kFn: {
      TURNSTILE_ASSIGN_OR_RETURN(fn, CompileLabelFn(spec));
      ++stats_.labeller_fn_evals;
      TURNSTILE_ASSIGN_OR_RETURN(
          result, interp_->CallFunction(fn, Value::Undefined(), {UnboxDeep(target)}));
      TURNSTILE_ASSIGN_OR_RETURN(labels, LabelsFromValue(result));
      RecordOrigins(labels, labeller_name);
      out_labels->UnionWith(labels);
      if (target.IsValueType()) {
        if (labels.empty()) {
          return target;  // nothing to track
        }
        ObjectPtr box = MakeObject();
        box->is_box = true;
        box->box_payload = target;
        ++stats_.boxes_created;
        Value boxed(box);
        AttachLabel(boxed, labels);
        return boxed;
      }
      AttachLabel(target, labels);
      if (target.IsObject()) {
        InstallProxy(target.AsObject());
      }
      return target;
    }
    case LabellerSpec::Kind::kMap: {
      Value unboxed = Unbox(target);
      if (!unboxed.IsArray()) {
        return target;  // $map on a non-array is a no-op (value may be absent)
      }
      LabelSet element_union;
      auto& elements = unboxed.AsArray()->elements;
      for (Value& element : elements) {
        LabelSet element_labels;
        TURNSTILE_ASSIGN_OR_RETURN(
            replacement,
            ApplySpec(spec->element.get(), element, &element_labels, labeller_name));
        element = replacement;
        element_union.UnionWith(element_labels);
      }
      AttachLabel(unboxed, element_union);
      out_labels->UnionWith(element_union);
      return target;
    }
    case LabellerSpec::Kind::kObject: {
      Value unboxed = Unbox(target);
      if (!unboxed.IsObject()) {
        return target;
      }
      const ObjectPtr& obj = unboxed.AsObject();
      LabelSet field_union;
      for (const auto& [field, sub_spec] : spec->fields) {
        if (sub_spec->kind == LabellerSpec::Kind::kInvoke) {
          // Call-time labeller for obj.field(...): registered, not evaluated.
          invoke_labellers_[{obj.get(), field}] = {sub_spec.get(), labeller_name};
          continue;
        }
        Value field_value = obj->Get(field);
        if (field_value.IsUndefined()) {
          continue;
        }
        LabelSet field_labels;
        TURNSTILE_ASSIGN_OR_RETURN(
            replacement, ApplySpec(sub_spec.get(), field_value, &field_labels, labeller_name));
        if (replacement.IdentityKey() != field_value.IdentityKey() ||
            replacement.IsObject() != field_value.IsObject()) {
          obj->Set(field, replacement);
        }
        field_union.UnionWith(field_labels);
      }
      AttachLabel(unboxed, field_union);
      InstallProxy(obj);
      out_labels->UnionWith(field_union);
      return target;
    }
    case LabellerSpec::Kind::kInvoke: {
      // Top-level $invoke: applies to direct calls of the target function or
      // to any method of the target object.
      const void* key = target.IdentityKey();
      if (key != nullptr) {
        invoke_labellers_[{key, ""}] = {spec, labeller_name};
      }
      return target;
    }
  }
  return target;
}

Result<Value> DiftTracker::Label(Value target, const std::string& labeller_name) {
  ++stats_.label_calls;
  const LabellerSpec* spec = policy_->FindLabeller(labeller_name);
  if (spec == nullptr) {
    return PolicyError("unknown labeller '" + labeller_name + "'");
  }
  LabelSet labels;
  TURNSTILE_ASSIGN_OR_RETURN(result, ApplySpec(spec, std::move(target), &labels,
                                               labeller_name));
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kDiftLabel, labeller_name,
                            labels.ToString(policy_->space()), interp_->VirtualNow());
  }
  return result;
}

// --- operations --------------------------------------------------------------

Result<Value> DiftTracker::BinaryOp(const std::string& op, const Value& left,
                                    const Value& right) {
  ++stats_.binary_ops;
  LabelSet labels = LabelSet::Union(GetLabel(left), GetLabel(right));
  // Cheap stack check first: the unlabelled fast path must not even touch
  // the recorder's cache line.
  if (!labels.empty() && trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kDiftBinaryOp, op,
                            labels.ToString(policy_->space()), interp_->VirtualNow());
  }
  TURNSTILE_ASSIGN_OR_RETURN(completion, interp_->EvalBinary(op, left, right));
  if (completion.IsAbrupt()) {
    return RuntimeError("binaryOp threw: " + completion.value.ToDisplayString());
  }
  Value result = completion.value;
  if (labels.empty()) {
    return result;
  }
  if (result.IsValueType()) {
    ObjectPtr box = MakeObject();
    box->is_box = true;
    box->box_payload = result;
    ++stats_.boxes_created;
    result = Value(box);
  }
  AttachLabel(result, labels);
  return result;
}

void DiftTracker::RecordViolation(const std::string& sink, const LabelSet& data,
                                  const LabelSet& receiver) {
  ++stats_.violations;
  Violation violation;
  violation.time = interp_->VirtualNow();
  violation.sink = sink;
  violation.data_labels = data.ToString(policy_->space());
  violation.receiver_labels = receiver.ToString(policy_->space());
  violation.trace_id = trace_recorder_->current_trace();
  violation.origin_node = trace_recorder_->OriginOf(violation.trace_id);

  // Provenance chain, oldest first: where each offending label came from ...
  for (LabelId id : data.ids()) {
    const LabelOrigin* origin = OriginOf(id);
    if (origin == nullptr) {
      continue;
    }
    obs::TraceEvent event;
    event.trace_id = origin->trace_id;
    event.seq = origin->seq;
    event.kind = obs::SpanKind::kDiftLabel;
    event.vtime = origin->time;
    event.subject = origin->labeller;
    event.detail = "attached '" + policy_->space().NameOf(id) + "'" +
                   (origin->node.empty() ? "" : " at node '" + origin->node + "'");
    violation.provenance.push_back(std::move(event));
  }
  // ... then the recorded journey of the violating message ...
  if (trace_recorder_->enabled() && violation.trace_id != 0) {
    for (obs::TraceEvent& event : trace_recorder_->EventsForTrace(violation.trace_id)) {
      violation.provenance.push_back(std::move(event));
    }
  }
  // ... ending at the sink that rejected the flow.
  obs::TraceEvent at_sink;
  at_sink.trace_id = violation.trace_id;
  at_sink.kind = obs::SpanKind::kViolation;
  at_sink.vtime = violation.time;
  at_sink.subject = sink;
  at_sink.detail = violation.data_labels + " cannot flow to " + violation.receiver_labels;
  violation.provenance.push_back(at_sink);
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kViolation, sink, at_sink.detail,
                            violation.time);
  }

  TURNSTILE_LOG(Warning) << "IFC violation at " << sink << ": "
                         << violation.data_labels << " cannot flow to "
                         << violation.receiver_labels;
  violations_.push_back(std::move(violation));
  PublishMetrics();  // violations are rare: keep the registry fresh for free
}

Result<bool> DiftTracker::Check(const Value& data, const Value& receiver,
                                const std::string& sink_name) {
  ++stats_.checks;
  LabelSet data_labels = DeepLabel(data);
  LabelSet receiver_labels = GetLabel(receiver);
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kDiftCheck, sink_name,
                            data_labels.ToString(policy_->space()) + " vs " +
                                receiver_labels.ToString(policy_->space()),
                            interp_->VirtualNow());
  }
  if (data_labels.empty()) {
    return true;
  }
  if (receiver_labels.empty()) {
    if (options_.strict_unlabeled_receivers) {
      RecordViolation(sink_name, data_labels, receiver_labels);
      return false;
    }
    return true;
  }
  bool allowed = policy_->rules().CanFlowSet(data_labels, receiver_labels);
  if (!allowed) {
    RecordViolation(sink_name, data_labels, receiver_labels);
  }
  return allowed;
}

Result<Value> DiftTracker::Invoke(const Value& target, const std::string& func,
                                  std::vector<Value> args) {
  ++stats_.invokes;
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kDiftInvoke, func, "", interp_->VirtualNow());
  }
  TURNSTILE_ASSIGN_OR_RETURN(fn_value, interp_->GetProperty(target, func));
  Value fn_unboxed = Unbox(fn_value);
  if (!fn_unboxed.IsFunction()) {
    return Interpreter::TypeError("invoke: '" + func + "' is not a function");
  }

  // Receiver label: a registered $invoke labeller wins; otherwise any label
  // already attached to the receiver object or the function itself.
  LabelSet receiver_labels;
  bool receiver_has_labeller = false;
  const LabellerSpec* invoke_spec = nullptr;
  const std::string* invoke_labeller_name = nullptr;
  const void* target_key = target.IdentityKey();
  auto it = invoke_labellers_.find({target_key, func});
  if (it == invoke_labellers_.end()) {
    it = invoke_labellers_.find({fn_unboxed.IdentityKey(), ""});
  }
  if (it == invoke_labellers_.end() && target_key != nullptr) {
    it = invoke_labellers_.find({target_key, ""});
  }
  if (it != invoke_labellers_.end()) {
    invoke_spec = it->second.spec;
    invoke_labeller_name = &it->second.labeller_name;
  }
  if (invoke_spec != nullptr) {
    receiver_has_labeller = true;
    TURNSTILE_ASSIGN_OR_RETURN(label_fn, CompileLabelFn(invoke_spec));
    ++stats_.labeller_fn_evals;
    std::vector<Value> unboxed_args;
    unboxed_args.reserve(args.size());
    for (const Value& arg : args) {
      unboxed_args.push_back(UnboxDeep(arg));
    }
    TURNSTILE_ASSIGN_OR_RETURN(
        label_value,
        interp_->CallFunction(label_fn, Value::Undefined(),
                              {UnboxDeep(target), Value(MakeArray(unboxed_args))}));
    TURNSTILE_ASSIGN_OR_RETURN(labels, LabelsFromValue(label_value));
    RecordOrigins(labels, *invoke_labeller_name);
    receiver_labels = labels;
  } else {
    receiver_labels = LabelSet::Union(GetLabel(target), GetLabel(fn_value));
  }

  // Data label: union over all arguments. Containers tracked by the proxy
  // mechanism already carry their children's labels, so a depth-2 walk
  // suffices to cover explicitly nested payloads (msg.payload) without
  // scanning whole object graphs on every call — except for *untracked*
  // large containers, which exhaustive instrumentation pays for (§6.2).
  LabelSet data_labels;
  for (const Value& arg : args) {
    data_labels.UnionWith(DeepLabel(arg, 2));
  }

  bool allowed = true;
  if (!data_labels.empty()) {
    if (receiver_labels.empty()) {
      allowed = !(receiver_has_labeller || options_.strict_unlabeled_receivers);
    } else {
      allowed = policy_->rules().CanFlowSet(data_labels, receiver_labels);
    }
  }
  if (!allowed) {
    RecordViolation(func, data_labels, receiver_labels);
    if (options_.mode == Options::Mode::kEnforce) {
      return Value::Undefined();
    }
  }

  // Sink natives receive unwrapped values ("unwrapped upon writing to a sink
  // object", §4.4); everything else — in-language callees and utility natives
  // such as Array.push — keeps the boxes so tracking continues.
  std::vector<Value> call_args;
  call_args.reserve(args.size());
  if (fn_unboxed.AsFunction()->is_io_sink) {
    for (Value& arg : args) {
      call_args.push_back(UnboxDeep(arg));
    }
  } else {
    call_args = std::move(args);
  }
  TURNSTILE_ASSIGN_OR_RETURN(result,
                             interp_->CallFunction(fn_unboxed.AsFunction(), target,
                                                   std::move(call_args)));
  // Fig. 5 (invoke): the returned value carries the union of argument labels.
  if (!data_labels.empty()) {
    if (result.IsValueType()) {
      if (!result.IsNullish()) {
        ObjectPtr box = MakeObject();
        box->is_box = true;
        box->box_payload = result;
        ++stats_.boxes_created;
        result = Value(box);
        AttachLabel(result, data_labels);
      }
    } else {
      AttachLabel(result, data_labels);
    }
  }
  return result;
}

// --- exhaustive tracking -----------------------------------------------------

Value DiftTracker::Track(Value v) {
  if (v.IsValueType()) {
    if (v.IsNullish() || v.IsBool()) {
      return v;  // nothing worth boxing
    }
    ObjectPtr box = MakeObject();
    box->is_box = true;
    box->box_payload = std::move(v);
    ++stats_.boxes_created;
    return Value(box);
  }
  // Register reference types in the label map with an empty label set so the
  // tracker pays the bookkeeping cost of managing them.
  const void* key = v.IdentityKey();
  if (key != nullptr) {
    labels_.try_emplace(key);
    label_anchors_.try_emplace(key, v);
    if (v.IsObject() && !v.AsObject()->is_box) {
      InstallProxy(v.AsObject());
    }
  }
  return v;
}

Value DiftTracker::TrackDeep(Value v, int depth) {
  if (depth <= 0) {
    return Track(std::move(v));
  }
  if (v.IsObject() && !v.AsObject()->is_box) {
    const ObjectPtr& obj = v.AsObject();
    for (Atom prop_key : obj->insertion_order) {
      auto it = obj->properties.find(prop_key);
      if (it == obj->properties.end() || it->second.IsFunction()) {
        continue;
      }
      it->second = TrackDeep(it->second, depth - 1);
    }
    return Track(std::move(v));
  }
  if (v.IsArray()) {
    for (Value& element : v.AsArray()->elements) {
      if (!element.IsFunction()) {
        element = TrackDeep(element, depth - 1);
      }
    }
    return Track(std::move(v));
  }
  return Track(std::move(v));
}

// --- MiniScript bridge -------------------------------------------------------

void DiftTracker::Install() {
  ObjectPtr dift = MakeObject();
  dift->debug_tag = "__dift";
  DiftTracker* tracker = this;

  dift->Set("label", Value(MakeNativeFunction(
      "__dift.label",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->Label(ArgAt(args, 0), UnboxDeep(ArgAt(args, 1)).ToDisplayString());
      })));

  dift->Set("binaryOp", Value(MakeNativeFunction(
      "__dift.binaryOp",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->BinaryOp(UnboxDeep(ArgAt(args, 0)).ToDisplayString(), ArgAt(args, 1),
                                 ArgAt(args, 2));
      })));

  dift->Set("check", Value(MakeNativeFunction(
      "__dift.check",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        TURNSTILE_ASSIGN_OR_RETURN(
            allowed, tracker->Check(ArgAt(args, 0), ArgAt(args, 1), "check"));
        return Value(allowed);
      })));

  dift->Set("invoke", Value(MakeNativeFunction(
      "__dift.invoke",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value args_array = ArgAt(args, 2);
        std::vector<Value> call_args;
        if (args_array.IsArray()) {
          call_args = args_array.AsArray()->elements;
        }
        return tracker->Invoke(ArgAt(args, 0), UnboxDeep(ArgAt(args, 1)).ToDisplayString(),
                               std::move(call_args));
      })));

  dift->Set("violationCount", Value(MakeNativeFunction(
      "__dift.violationCount",
      [tracker](Interpreter&, const Value&, std::vector<Value>&) -> Result<Value> {
        return Value(static_cast<double>(tracker->violations_.size()));
      })));

  dift->Set("labelsOf", Value(MakeNativeFunction(
      "__dift.labelsOf",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        LabelSet labels = tracker->DeepLabel(ArgAt(args, 0));
        std::vector<Value> names;
        for (LabelId id : labels.ids()) {
          names.push_back(Value(tracker->policy_->space().NameOf(id)));
        }
        return Value(MakeArray(std::move(names)));
      })));

  dift->Set("track", Value(MakeNativeFunction(
      "__dift.track",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->Track(ArgAt(args, 0));
      })));

  dift->Set("trackDeep", Value(MakeNativeFunction(
      "__dift.trackDeep",
      [tracker](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return tracker->TrackDeep(ArgAt(args, 0));
      })));

  dift->Set("unwrap", Value(MakeNativeFunction(
      "__dift.unwrap",
      [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        return UnboxDeep(ArgAt(args, 0));
      })));

  interp_->DefineGlobal("__dift", Value(dift));
}

}  // namespace turnstile
