// The Inlined Dynamic Information Flow Tracker (§4.4).
//
// The tracker is registered into the interpreter as an ordinary global object
// named `__dift`, exactly as the paper inlines a minified tracker + policy
// into the instrumented application (Fig. 2b line 1). The interpreter core
// has no IFC knowledge: everything here goes through public interpreter APIs,
// which is the reproduction of the paper's platform-independence property.
//
// Implemented semantics (Fig. 5):
//   label(v, l)        —  v ↦ l(v)
//   binaryOp(⊙, v1,v2) —  v3 = v1 ⊙ v2,  v3 ↦ P1 ∪ P2
//   assignment         —  handled structurally: labels ride on object
//                         identity; value types are boxed
//   invoke(f, v...)    —  check ∀args ⊑ receiver, call, result ↦ ∪ Pi
//   check(d, r)        —  rule query without a call
#ifndef TURNSTILE_SRC_DIFT_TRACKER_H_
#define TURNSTILE_SRC_DIFT_TRACKER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ifc/policy.h"
#include "src/interp/interp.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace turnstile {

// A recorded policy violation, with provenance: not just *that* the flow was
// forbidden, but *where* the offending labels came from and through which
// nodes/operations the message travelled.
struct Violation {
  double time = 0.0;         // virtual time
  std::string sink;          // function / receiver description
  std::string data_labels;   // rendered label sets (diagnostics)
  std::string receiver_labels;
  uint64_t trace_id = 0;     // obs trace active at violation time (0 = untraced)
  std::string origin_node;   // flow node the traced message was injected at
  // The chain of events that produced the offending label set: one
  // kDiftLabel entry per data label naming the labeller that attached it
  // (always recorded), then the buffered trace events of the violating
  // message (when the obs trace recorder is enabled), ending with the
  // violation itself. Rendered by ExplainViolation() in src/analysis/report.
  std::vector<obs::TraceEvent> provenance;
};

// Tracker statistics — used by the ablation benches.
struct TrackerStats {
  uint64_t label_calls = 0;
  uint64_t binary_ops = 0;
  uint64_t checks = 0;
  uint64_t invokes = 0;
  uint64_t boxes_created = 0;
  uint64_t violations = 0;
  uint64_t labeller_fn_evals = 0;
};

class DiftTracker {
 public:
  struct Options {
    // kReport records violations but lets the flow proceed; kEnforce blocks
    // the offending call (invoke returns undefined).
    enum class Mode { kReport, kEnforce };
    Mode mode = Mode::kEnforce;
    // When true, flows into receivers with no label information are treated
    // as violations (fail-closed). Default fail-open: selective
    // instrumentation routinely wraps calls whose receiver is unmanaged.
    bool strict_unlabeled_receivers = false;
    // When true (default), every labeller-driven label attachment records
    // its origin (labeller name, source node, sequence number) so recorded
    // violations carry a provenance chain. One small map insert per label()
    // call; set false to shave it off micro-benchmarks.
    bool record_provenance = true;
  };

  DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy);
  DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy, Options options);

  // Defines the `__dift` global. Call once before running the program.
  void Install();

  // --- the Table 1 API (also exposed to MiniScript) -------------------------

  // Evaluates the named labeller against `target` and attaches the resulting
  // label. Returns the (possibly boxed) managed value that must replace
  // `target` in the program.
  Result<Value> Label(Value target, const std::string& labeller_name);

  // v1 ⊙ v2 with compound labelling of the result.
  Result<Value> BinaryOp(const std::string& op, const Value& left, const Value& right);

  // Pure rule query; records a violation when the flow is forbidden.
  Result<bool> Check(const Value& data, const Value& receiver, const std::string& sink_name);

  // Checked call: verifies args ⊑ receiver, invokes target[func](args) with
  // unwrapped arguments, labels the result with the union of argument labels.
  Result<Value> Invoke(const Value& target, const std::string& func, std::vector<Value> args);

  // Pure tracking (exhaustive instrumentation): registers `v` in the label
  // map without assigning labels, boxing value types. TrackDeep additionally
  // boxes every value-type property/element reachable from `v` — this is the
  // cost model for exhaustively-managed applications (§6.2: nlp.js converts
  // every dictionary string into a heap-allocated object).
  Value Track(Value v);
  Value TrackDeep(Value v, int depth = 4);

  // --- label plumbing --------------------------------------------------------

  // Label attached directly to `v` (empty when untracked).
  LabelSet GetLabel(const Value& v) const;
  // Label of `v` including labels reachable through its properties/elements,
  // down to `max_depth`. Containers labelled via label()/proxies already
  // carry their children's union at depth 0; the default covers explicitly
  // nested data (msg.payload) without walking entire object graphs.
  LabelSet DeepLabel(const Value& v, int max_depth = 8) const;
  void AttachLabel(const Value& v, const LabelSet& labels);

  const std::vector<Violation>& violations() const { return violations_; }
  const TrackerStats& stats() const { return stats_; }
  Policy& policy() { return *policy_; }
  size_t tracked_count() const { return labels_.size(); }

  // Flushes the per-tracker stats deltas into the global metrics registry
  // ("dift.*" counters). The hot-path ops deliberately bump only the plain
  // TrackerStats fields; callers (driver, benches, tests) publish at message
  // or snapshot granularity. Violations publish automatically.
  void PublishMetrics();

  // Where a label was first attached by a labeller (provenance source).
  struct LabelOrigin {
    std::string labeller;   // labeller name from the policy
    std::string node;       // flow node of the active trace ("" = untraced)
    uint64_t trace_id = 0;  // trace active at attachment time
    uint64_t seq = 0;       // tracker-local attachment sequence number
    double time = 0.0;      // virtual time of attachment
  };
  // Origin of `id`, or nullptr when the label was never labeller-attached.
  const LabelOrigin* OriginOf(LabelId id) const;

 private:
  Result<Value> ApplySpec(const LabellerSpec* spec, Value target, LabelSet* out_labels,
                          const std::string& labeller_name);
  void RecordOrigins(const LabelSet& labels, const std::string& labeller_name);
  Result<FunctionPtr> CompileLabelFn(const LabellerSpec* spec);
  Result<LabelSet> LabelsFromValue(const Value& v);  // fn result -> LabelSet
  void DeepLabelInto(const Value& v, LabelSet* out,
                     std::unordered_set<const void*>* visited, int depth) const;
  void RecordViolation(const std::string& sink, const LabelSet& data,
                       const LabelSet& receiver);
  // Installs the set-trap proxy on a tracked object (dynamic property
  // support, §4.4).
  void InstallProxy(const ObjectPtr& object);

  Interpreter* interp_;
  std::shared_ptr<Policy> policy_;
  Options options_;
  // The global label map (§4.4), keyed by object identity. Entries retain the
  // tracked value itself: identity keys are raw addresses, and without
  // retention a freed object's entry could be inherited by a new allocation
  // at the same address. (JavaScript's Map has the same strong-retention
  // semantics the paper relies on.)
  std::unordered_map<const void*, LabelSet> labels_;
  std::unordered_map<const void*, Value> label_anchors_;
  // ($invoke labellers) keyed by object identity + method name; the value
  // keeps the owning labeller's name for provenance.
  struct InvokeLabeller {
    const LabellerSpec* spec = nullptr;
    std::string labeller_name;
  };
  std::map<std::pair<const void*, std::string>, InvokeLabeller> invoke_labellers_;
  std::unordered_map<const LabellerSpec*, FunctionPtr> compiled_fns_;
  std::vector<Violation> violations_;
  TrackerStats stats_;
  TrackerStats published_;  // last state flushed by PublishMetrics()

  // Provenance: first labeller attachment per label id.
  std::unordered_map<LabelId, LabelOrigin> label_origins_;
  uint64_t origin_seq_ = 0;

  // Observability handles (resolved once in the constructor).
  obs::TraceRecorder* trace_recorder_ = nullptr;
  obs::Counter* metric_label_calls_ = nullptr;
  obs::Counter* metric_binary_ops_ = nullptr;
  obs::Counter* metric_checks_ = nullptr;
  obs::Counter* metric_invokes_ = nullptr;
  obs::Counter* metric_boxes_created_ = nullptr;
  obs::Counter* metric_violations_ = nullptr;
  obs::Counter* metric_labeller_fn_evals_ = nullptr;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_DIFT_TRACKER_H_
