// The Inlined Dynamic Information Flow Tracker (§4.4).
//
// The tracker is registered into the interpreter as an ordinary global object
// named `__dift`, exactly as the paper inlines a minified tracker + policy
// into the instrumented application (Fig. 2b line 1). The interpreter core
// has no IFC knowledge: everything here goes through public interpreter APIs,
// which is the reproduction of the paper's platform-independence property.
//
// Implemented semantics (Fig. 5):
//   label(v, l)        —  v ↦ l(v)
//   binaryOp(⊙, v1,v2) —  v3 = v1 ⊙ v2,  v3 ↦ P1 ∪ P2
//   assignment         —  handled structurally: labels ride on object
//                         identity; value types are boxed
//   invoke(f, v...)    —  check ∀args ⊑ receiver, call, result ↦ ∪ Pi
//   check(d, r)        —  rule query without a call
//
// Hot-path representation: every label set the tracker carries is interned in
// the policy's LabelSetPool and handled as a LabelSetRef, so per-op unions,
// subset tests and rule checks are handle compares / flat-cache lookups with
// no per-op allocation. The label map itself is one open-addressed table
// keyed by identity pointer holding {labels, anchor} — a single probe per op
// where the old design probed two unordered_maps.
#ifndef TURNSTILE_SRC_DIFT_TRACKER_H_
#define TURNSTILE_SRC_DIFT_TRACKER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ifc/policy.h"
#include "src/interp/dift_hook.h"
#include "src/interp/interp.h"
#include "src/lang/atoms.h"
#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace turnstile {

// A recorded policy violation, with provenance: not just *that* the flow was
// forbidden, but *where* the offending labels came from and through which
// nodes/operations the message travelled.
struct Violation {
  double time = 0.0;         // virtual time
  std::string sink;          // function / receiver description
  std::string data_labels;   // rendered label sets (diagnostics)
  std::string receiver_labels;
  uint64_t trace_id = 0;     // obs trace active at violation time (0 = untraced)
  std::string origin_node;   // flow node the traced message was injected at
  // The chain of events that produced the offending label set: one
  // kDiftLabel entry per data label naming the labeller that attached it
  // (always recorded), then the buffered trace events of the violating
  // message (when the obs trace recorder is enabled), ending with the
  // violation itself. Rendered by ExplainViolation() in src/analysis/report.
  std::vector<obs::TraceEvent> provenance;
};

// Tracker statistics — used by the ablation benches.
struct TrackerStats {
  uint64_t label_calls = 0;
  uint64_t binary_ops = 0;
  uint64_t checks = 0;
  uint64_t invokes = 0;
  uint64_t boxes_created = 0;
  uint64_t violations = 0;
  uint64_t labeller_fn_evals = 0;
  uint64_t deep_label_memo_hits = 0;  // DeepLabel answered from the memo
};

class DiftTracker : public DiftHook {
 public:
  struct Options {
    // kReport records violations but lets the flow proceed; kEnforce blocks
    // the offending call (invoke returns undefined).
    enum class Mode { kReport, kEnforce };
    Mode mode = Mode::kEnforce;
    // When true, flows into receivers with no label information are treated
    // as violations (fail-closed). Default fail-open: selective
    // instrumentation routinely wraps calls whose receiver is unmanaged.
    bool strict_unlabeled_receivers = false;
    // When true (default), every labeller-driven label attachment records
    // its origin (labeller name, source node, sequence number) so recorded
    // violations carry a provenance chain. One small map insert per label()
    // call; set false to shave it off micro-benchmarks.
    bool record_provenance = true;
  };

  DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy);
  DiftTracker(Interpreter* interp, std::shared_ptr<Policy> policy, Options options);
  // Breaks tracker-side anchor cycles: clears the proxy traps installed on
  // every anchored object (they point back into this tracker) and releases
  // the anchors, so a destroyed tracker neither dangles from surviving
  // objects nor keeps closure graphs (which can reach `__dift`) alive. Also
  // deregisters this tracker as the interpreter's fused-ISA hook.
  ~DiftTracker() override;

  // Defines the `__dift` global and registers this tracker as the
  // interpreter's fused-ISA hook. Call once before running the program.
  void Install();

  // --- the Table 1 API (also exposed to MiniScript) -------------------------

  // Evaluates the named labeller against `target` and attaches the resulting
  // label. Returns the (possibly boxed) managed value that must replace
  // `target` in the program.
  Result<Value> Label(Value target, const std::string& labeller_name);

  // v1 ⊙ v2 with compound labelling of the result.
  Result<Value> BinaryOp(const std::string& op, const Value& left, const Value& right);

  // Pure rule query; records a violation when the flow is forbidden.
  Result<bool> Check(const Value& data, const Value& receiver, const std::string& sink_name);

  // Checked call: verifies args ⊑ receiver, invokes target[func](args) with
  // unwrapped arguments, labels the result with the union of argument labels.
  Result<Value> Invoke(const Value& target, const std::string& func, std::vector<Value> args);

  // --- fused-ISA entry points (DiftHook; called by the labelled opcodes) -----
  // Same semantics and the same trace/audit/stats effects as the string-API
  // methods above, minus the per-op heap-named profile span: fused ops bill
  // into the profiler's monitor bucket through a bare accounting window.
  Result<Value> FusedBinary(const std::string& spelling, turnstile::BinaryOp op,
                            const Value& left, const Value& right) override;
  Result<Value> FusedCheck(const Value& data, const Value& receiver) override;
  Result<Value> FusedInvoke(const Value& target, const std::string& func,
                            std::vector<Value> args) override;

  // Pure tracking (exhaustive instrumentation): registers `v` in the label
  // map without assigning labels, boxing value types. TrackDeep additionally
  // boxes every value-type property/element reachable from `v` — this is the
  // cost model for exhaustively-managed applications (§6.2: nlp.js converts
  // every dictionary string into a heap-allocated object).
  Value Track(Value v);
  Value TrackDeep(Value v, int depth = 4);

  // --- label plumbing --------------------------------------------------------

  // Interned-handle API (the hot path). Handles belong to policy().pool().
  LabelSetRef GetLabelRef(const Value& v) const;
  // Label of `v` including labels reachable through its properties/elements,
  // down to `max_depth` (must be < 64). Memoized per identity pointer; the
  // memo is dropped whenever the tracker's label map or the interpreter heap
  // mutates (see HeapWriteEpoch in src/interp/value.h), so repeated checks of
  // the same message between mutations cost one flat lookup.
  LabelSetRef DeepLabelRef(const Value& v, int max_depth = 8) const;
  void AttachLabelRef(const Value& v, LabelSetRef labels);

  // Materializing compatibility wrappers over the handle API.
  LabelSet GetLabel(const Value& v) const;
  LabelSet DeepLabel(const Value& v, int max_depth = 8) const;
  void AttachLabel(const Value& v, const LabelSet& labels);

  const std::vector<Violation>& violations() const { return violations_; }
  const TrackerStats& stats() const { return stats_; }
  Policy& policy() { return *policy_; }
  size_t tracked_count() const { return store_.size(); }

  // Flushes the per-tracker stats deltas into the global metrics registry
  // ("dift.*" counters). The hot-path ops deliberately bump only the plain
  // TrackerStats fields; callers (driver, benches, tests) publish at message
  // or snapshot granularity. Violations publish automatically.
  void PublishMetrics();

  // Where a label was first attached by a labeller (provenance source).
  struct LabelOrigin {
    std::string labeller;   // labeller name from the policy
    std::string node;       // flow node of the active trace ("" = untraced)
    uint64_t trace_id = 0;  // trace active at attachment time
    uint64_t seq = 0;       // tracker-local attachment sequence number
    double time = 0.0;      // virtual time of attachment
  };
  // Origin of `id`, or nullptr when the label was never labeller-attached.
  const LabelOrigin* OriginOf(LabelId id) const;

 private:
  // One open-addressed, identity-keyed table holding everything the tracker
  // knows about a tracked value: its interned label set and the anchoring
  // Value. Anchors retain the tracked value itself: identity keys are raw
  // addresses, and without retention a freed object's entry could be
  // inherited by a new allocation at the same address. (JavaScript's Map has
  // the same strong-retention semantics the paper relies on.) Entries are
  // never removed while the tracker lives — labels only grow — so linear
  // probing needs no tombstones.
  class LabelStore {
   public:
    struct Entry {
      const void* key = nullptr;
      LabelSetRef labels = kEmptyLabelSetRef;
      bool proxied = false;  // this tracker installed the object's traps
      Value anchor;
    };

    LabelStore() : slots_(kInitialCapacity) {}

    Entry* Find(const void* key) {
      size_t mask = slots_.size() - 1;
      for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
        Entry& slot = slots_[i];
        if (slot.key == key) {
          return &slot;
        }
        if (slot.key == nullptr) {
          return nullptr;
        }
      }
    }
    const Entry* Find(const void* key) const {
      return const_cast<LabelStore*>(this)->Find(key);
    }
    // Returns the entry for `key`, inserting an empty one if absent. The
    // caller anchors fresh entries.
    Entry& FindOrInsert(const void* key) {
      if ((size_ + 1) * 4 > slots_.size() * 3) {
        Grow();
      }
      size_t mask = slots_.size() - 1;
      for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
        Entry& slot = slots_[i];
        if (slot.key == key) {
          return slot;
        }
        if (slot.key == nullptr) {
          slot.key = key;
          ++size_;
          return slot;
        }
      }
    }
    size_t size() const { return size_; }
    template <typename Fn>
    void ForEach(Fn&& fn) {
      for (Entry& slot : slots_) {
        if (slot.key != nullptr) {
          fn(slot);
        }
      }
    }

   private:
    static constexpr size_t kInitialCapacity = 64;  // power of two
    static size_t Hash(const void* key) {
      uint64_t x = reinterpret_cast<uint64_t>(key);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
    void Grow();

    std::vector<Entry> slots_;
    size_t size_ = 0;
  };

  // Shared op bodies: everything after the per-entry stats bump and profiling
  // window. Both the string API (native bridge) and the Fused* entry points
  // funnel here so the two paths cannot drift.
  Result<Value> BinaryOpCore(const std::string& spelling, turnstile::BinaryOp op,
                             const Value& left, const Value& right);
  Result<bool> CheckCore(const Value& data, const Value& receiver,
                         const std::string& sink_name);
  Result<Value> InvokeCore(const Value& target, const std::string& func,
                           std::vector<Value> args);

  Result<Value> ApplySpec(const LabellerSpec* spec, Value target, LabelSetRef* out_labels,
                          const std::string& labeller_name);
  LabelSetRef ConstLabels(const LabellerSpec* spec);
  void RecordOrigins(LabelSetRef labels, const std::string& labeller_name);
  Result<FunctionPtr> CompileLabelFn(const LabellerSpec* spec);
  Result<LabelSetRef> LabelsFromValue(const Value& v);  // fn result -> interned set
  void DeepLabelInto(const Value& v, LabelSetRef* out, int depth) const;
  void RecordViolation(const std::string& sink, LabelSetRef data, LabelSetRef receiver);
  // Ledgers one kFlowCheck audit event; callers gate on audit_->enabled().
  void RecordFlowAudit(const std::string& sink, LabelSetRef data, LabelSetRef receiver,
                       bool allowed, std::string rule);
  // "{a} vs {b}" for check-trace events, built once per handle pair and
  // reused — enabled-tracing runs pay a flat lookup per check instead of
  // re-rendering label names (see obs_trace_test coverage).
  const std::string& CheckDetail(LabelSetRef data, LabelSetRef receiver);
  // Installs the set-trap proxy on a tracked object (dynamic property
  // support, §4.4).
  void InstallProxy(const ObjectPtr& object);

  Interpreter* interp_;
  std::shared_ptr<Policy> policy_;
  LabelSetPool* pool_;  // = &policy_->pool(); shared by all trackers on a policy
  Options options_;
  // The global label map (§4.4): single identity-keyed open-addressed table.
  LabelStore store_;
  // ($invoke labellers) keyed by object identity + interned method name
  // (kAtomEmpty = "any method"); the value keeps the owning labeller's name
  // for provenance.
  struct InvokeLabeller {
    const LabellerSpec* spec = nullptr;
    std::string labeller_name;
  };
  struct InvokeKeyHash {
    size_t operator()(const std::pair<const void*, Atom>& key) const {
      uint64_t x = reinterpret_cast<uint64_t>(key.first) ^
                   (uint64_t{key.second} * 0x9E3779B97F4A7C15ull);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };
  std::unordered_map<std::pair<const void*, Atom>, InvokeLabeller, InvokeKeyHash>
      invoke_labellers_;
  std::unordered_map<const LabellerSpec*, FunctionPtr> compiled_fns_;
  std::unordered_map<const LabellerSpec*, LabelSetRef> const_label_refs_;
  std::vector<Violation> violations_;
  mutable TrackerStats stats_;  // const read paths bump memo-hit counters
  TrackerStats published_;  // last state flushed by PublishMetrics()

  // DeepLabel machinery: a reusable scratch visited-set (cleared, not
  // reallocated, per walk) and a per-(identity, depth) memo valid for one
  // combined tracker+heap epoch.
  mutable std::unordered_set<const void*> deep_visited_;
  mutable std::unordered_map<uint64_t, LabelSetRef> deep_memo_;
  mutable uint64_t deep_memo_epoch_ = 0;
  uint64_t mutation_epoch_ = 1;  // bumped whenever the label map changes

  // Memoized "{data} vs {receiver}" renderings for check-trace events.
  std::unordered_map<uint64_t, std::string> check_detail_cache_;

  // Provenance: first labeller attachment per label id.
  std::unordered_map<LabelId, LabelOrigin> label_origins_;
  uint64_t origin_seq_ = 0;

  // Observability handles (resolved once in the constructor).
  obs::TraceRecorder* trace_recorder_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::AuditLedger* audit_ = nullptr;
  obs::Counter* metric_label_calls_ = nullptr;
  obs::Counter* metric_binary_ops_ = nullptr;
  obs::Counter* metric_checks_ = nullptr;
  obs::Counter* metric_invokes_ = nullptr;
  obs::Counter* metric_boxes_created_ = nullptr;
  obs::Counter* metric_violations_ = nullptr;
  obs::Counter* metric_labeller_fn_evals_ = nullptr;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_DIFT_TRACKER_H_
