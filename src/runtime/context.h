// RuntimeContext: the explicit per-app-instance environment (ISSUE 7).
//
// Every layer of the runtime used to bind to process-wide singletons —
// AtomTable::Global() and the four obs singletons (Metrics, TraceRecorder,
// Profiler, AuditLedger) — which made "many mutually-isolated app instances
// in one process" structurally impossible. RuntimeContext turns that ambient
// state into a parameter: the Interpreter (and through it the VM, FlowEngine,
// DiftTracker and corpus AppRuntime) resolves its observability handles from
// the context it was constructed with.
//
// Two kinds of context:
//   - Default(): references the process-wide singletons. Tools, benches and
//     every existing test run against it unchanged — Metrics::Global()
//     snapshots stay byte-compatible because they ARE the default context's
//     registry.
//   - CreateIsolated(): owns a private Metrics registry, TraceRecorder,
//     Profiler and AuditLedger. App instances built on isolated contexts can
//     run concurrently on separate threads: their metrics, traces and audit
//     ledgers are disjoint by construction (runtime_isolation_test proves it
//     under TSAN).
//
// What stays process-wide (by design, documented in DESIGN.md §12):
//   - the AtomTable: atoms are stable 32-bit names; sharing the table keeps
//     them meaningful across contexts, and Find/NameOf are lock-free.
//   - per-policy LabelSetPools: already owned by each instance's Policy,
//     below this layer — the context does not need to own them, only the
//     sinks their handles are rendered into.
//   - static-phase metrics (parse/analysis timings) and vm.chunks_compiled:
//     compilation is a per-AST artifact, recorded in the global registry.
#ifndef TURNSTILE_SRC_RUNTIME_CONTEXT_H_
#define TURNSTILE_SRC_RUNTIME_CONTEXT_H_

#include <memory>

#include "src/lang/atoms.h"
#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace turnstile {

class RuntimeContext {
 public:
  // The process-default context: wraps AtomTable::Global() and the obs
  // singletons. Never destroyed (its members are the never-destroyed
  // singletons whose pointers hot paths cache).
  static RuntimeContext& Default();

  // A context with a private obs stack (metrics + trace recorder + profiler +
  // audit ledger), sharing the process-wide atom table. The instance built on
  // it must stay confined to one thread at a time (the obs sinks other than
  // Metrics are intentionally lock-free single-threaded structures).
  static std::unique_ptr<RuntimeContext> CreateIsolated();

  ~RuntimeContext() = default;
  RuntimeContext(const RuntimeContext&) = delete;
  RuntimeContext& operator=(const RuntimeContext&) = delete;

  AtomTable& atoms() const { return *atoms_; }
  obs::Metrics& metrics() const { return *metrics_; }
  obs::TraceRecorder& trace_recorder() const { return *trace_recorder_; }
  obs::Profiler& profiler() const { return *profiler_; }
  obs::AuditLedger& audit() const { return *audit_; }

  bool is_default() const { return is_default_; }

  // Env-var obs configuration (TURNSTILE_TRACE / TURNSTILE_PROFILE /
  // TURNSTILE_AUDIT) binds to the *default* context only, once per process:
  // isolated contexts are configured programmatically by whoever created
  // them. Called from the Interpreter constructor.
  void ApplyEnvObsConfig();

 private:
  RuntimeContext();  // the default context

  struct Isolated {};  // tag: the owning constructor
  explicit RuntimeContext(Isolated);

  bool is_default_ = false;
  AtomTable* atoms_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::TraceRecorder* trace_recorder_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::AuditLedger* audit_ = nullptr;

  // Storage for isolated contexts (null in the default context).
  std::unique_ptr<obs::Metrics> owned_metrics_;
  std::unique_ptr<obs::TraceRecorder> owned_trace_recorder_;
  std::unique_ptr<obs::Profiler> owned_profiler_;
  std::unique_ptr<obs::AuditLedger> owned_audit_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_RUNTIME_CONTEXT_H_
