#include "src/runtime/fleet.h"

#include <utility>

#include "src/support/env.h"
#include "src/support/logging.h"

namespace turnstile {

namespace {
uint64_t RouteKey(int shard, uint32_t instance) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(shard)) << 32) | instance;
}
}  // namespace

// --- serialization -----------------------------------------------------------

Json FleetSerializeMessage(const Value& msg) {
  Value value = Unbox(msg);
  if (value.IsBool()) {
    return Json(value.AsBool());
  }
  if (value.IsNumber()) {
    return Json(value.AsNumber());
  }
  if (value.IsString()) {
    return Json(value.AsString());
  }
  if (value.IsArray()) {
    Json out = Json::Array();
    for (const Value& element : value.AsArray()->elements) {
      out.Append(FleetSerializeMessage(element));
    }
    return out;
  }
  if (value.IsObject()) {
    Json out = Json::Object();
    const ObjectPtr& object = value.AsObject();
    for (Atom key : object->insertion_order) {
      if (object->Has(key)) {
        out.Set(AtomName(key), FleetSerializeMessage(object->Get(key)));
      }
    }
    return out;
  }
  // undefined, null, functions: nothing transportable — degrade to null,
  // matching what JSON.stringify would do to the first two.
  return Json(nullptr);
}

Value FleetMaterializeMessage(const Json& payload) {
  switch (payload.type()) {
    case Json::Type::kBool:
      return Value(payload.bool_value());
    case Json::Type::kNumber:
      return Value(payload.number_value());
    case Json::Type::kString:
      return Value(payload.string_value());
    case Json::Type::kArray: {
      std::vector<Value> elements;
      elements.reserve(payload.array_items().size());
      for (const Json& element : payload.array_items()) {
        elements.push_back(FleetMaterializeMessage(element));
      }
      return Value(MakeArray(std::move(elements)));
    }
    case Json::Type::kObject: {
      ObjectPtr object = MakeObject();
      for (const auto& [key, value] : payload.object_items()) {
        object->Set(key, FleetMaterializeMessage(value));
      }
      return Value(object);
    }
    case Json::Type::kNull:
      break;
  }
  return Value::Null();
}

// --- FleetRuntime ------------------------------------------------------------

int FleetRuntime::ShardsFromEnv(int fallback) {
  return static_cast<int>(EnvInt("TURNSTILE_FLEET_SHARDS", fallback, 1, 256));
}

FleetRuntime::FleetRuntime(Options options) : options_(std::move(options)) {
  if (options_.shards <= 0) {
    options_.shards = ShardsFromEnv(/*fallback=*/4);
  }
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(this, i, options_.mailbox_capacity));
  }
}

FleetRuntime::~FleetRuntime() { Stop(); }

std::string FleetRuntime::AddApp(const CorpusApp& app, int shard) {
  int target = shard;
  if (target < 0 || target >= shard_count()) {
    target = next_shard_;
    next_shard_ = (next_shard_ + 1) % shard_count();
  }
  int ordinal = per_app_counts_[app.name]++;
  std::string id = app.name + "#" + std::to_string(ordinal);
  Shard::InstanceSpec spec;
  spec.app = &app;
  spec.id = id;
  spec.seed = options_.rng_seed;
  uint32_t instance = shards_[static_cast<size_t>(target)]->AddInstance(std::move(spec));
  apps_[id] = Placement{target, instance};
  return id;
}

Status FleetRuntime::Wire(const std::string& src_id, const std::string& dst_id) {
  auto src = apps_.find(src_id);
  auto dst = apps_.find(dst_id);
  if (src == apps_.end()) {
    return NotFoundError("fleet: unknown source app '" + src_id + "'");
  }
  if (dst == apps_.end()) {
    return NotFoundError("fleet: unknown destination app '" + dst_id + "'");
  }
  if (started_) {
    return InvalidArgumentError("fleet: Wire() must precede Start()");
  }
  routes_[RouteKey(src->second.shard, src->second.instance)] = dst->second;
  shards_[static_cast<size_t>(src->second.shard)]->WireInstance(src->second.instance);
  return Status::Ok();
}

Status FleetRuntime::Start() {
  started_ = true;
  // Start every shard; each Start() blocks until that shard's instances are
  // built (on the shard's own thread), so setup parallelizes across shards.
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->Start();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->status().ok()) {
      return shard->status();
    }
  }
  return Status::Ok();
}

bool FleetRuntime::Post(const std::string& app_id, int seq, bool record) {
  auto it = apps_.find(app_id);
  if (it == apps_.end() || stopped_) {
    return false;
  }
  FleetEnvelope env;
  env.kind = FleetEnvelope::Kind::kGenerate;
  env.instance = it->second.instance;
  env.seq = seq;
  env.record = record;
  if (options_.trace_capacity > 0) {
    // Injection root: mint the fleet-wide id the message keeps across every
    // wire hop. hop 0, no parent — this IS the origin span.
    env.trace.fleet_trace_id = next_fleet_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!shards_[static_cast<size_t>(it->second.shard)]->Post(std::move(env))) {
    OnProcessed();  // mailbox closed: the envelope never entered the system
    return false;
  }
  return true;
}

void FleetRuntime::RouteTerminal(int src_shard, uint32_t src_instance, const Value& msg,
                                 const FleetTraceContext& trace) {
  auto it = routes_.find(RouteKey(src_shard, src_instance));
  if (it == routes_.end()) {
    return;
  }
  FleetEnvelope env;
  env.kind = FleetEnvelope::Kind::kPayload;
  env.instance = it->second.instance;
  env.payload = FleetSerializeMessage(msg);
  env.trace = trace;  // rides the envelope, never the payload or the ledger
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!shards_[static_cast<size_t>(it->second.shard)]->Post(std::move(env))) {
    OnProcessed();
  }
}

void FleetRuntime::OnProcessed() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last envelope: wake Drain(). The lock pairs with the waiter's recheck,
    // closing the decide-then-sleep race.
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void FleetRuntime::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

void FleetRuntime::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  if (telemetry_ != nullptr) {
    // Detach before teardown: ClearProviders blocks until any in-flight
    // provider call (which reads shard instruments) has returned.
    telemetry_->ClearProviders();
    telemetry_ = nullptr;
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->Join();
  }
}

uint64_t FleetRuntime::messages_processed() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->processed();
  }
  return total;
}

AppRuntime* FleetRuntime::runtime_of(const std::string& app_id) const {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    return nullptr;
  }
  return shards_[static_cast<size_t>(it->second.shard)]->runtime_of(it->second.instance);
}

RuntimeContext* FleetRuntime::context_of(const std::string& app_id) const {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    return nullptr;
  }
  return shards_[static_cast<size_t>(it->second.shard)]->context_of(it->second.instance);
}

std::vector<std::string> FleetRuntime::errors() const {
  std::vector<std::string> out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    out.insert(out.end(), shard->errors().begin(), shard->errors().end());
  }
  return out;
}

uint64_t FleetRuntime::MergeShardLatency(int shard, obs::Histogram* into) const {
  if (shard < 0 || shard >= shard_count()) {
    return 0;
  }
  return shards_[static_cast<size_t>(shard)]->MergeLatency(into);
}

uint64_t FleetRuntime::MergeFleetLatency(obs::Histogram* into) const {
  uint64_t merged = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    merged += shard->MergeLatency(into);
  }
  return merged;
}

uint64_t FleetRuntime::MergeQueueLatency(obs::Histogram* into) const {
  uint64_t merged = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (into->Merge(shard->queue_latency())) {
      merged += shard->queue_latency().count();
    }
  }
  return merged;
}

uint64_t FleetRuntime::MergeEnqueueWait(obs::Histogram* into) const {
  uint64_t merged = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (into->Merge(shard->enqueue_wait())) {
      merged += shard->enqueue_wait().count();
    }
  }
  return merged;
}

obs::FleetTraceAssembler FleetRuntime::AssembleTrace() const {
  obs::FleetTraceAssembler assembler;
  for (int s = 0; s < shard_count(); ++s) {
    const Shard& sh = *shards_[static_cast<size_t>(s)];
    const std::string lane = "shard" + std::to_string(s);
    for (uint32_t i = 0; i < sh.instance_count(); ++i) {
      RuntimeContext* context = sh.context_of(i);
      if (context == nullptr || !context->trace_recorder().enabled()) {
        continue;
      }
      std::vector<obs::FleetSpanBinding> bindings;
      for (const ShardTraceBinding& binding : sh.trace_bindings()) {
        if (binding.instance != i) {
          continue;
        }
        bindings.push_back(obs::FleetSpanBinding{binding.local_trace_id,
                                                 binding.trace.fleet_trace_id,
                                                 binding.trace.parent_span, binding.trace.hop});
      }
      assembler.AddContext(s, lane, sh.instance_id(i), context->trace_recorder().Snapshot(),
                           std::move(bindings));
    }
  }
  return assembler;
}

void FleetRuntime::AttachTelemetry(obs::TelemetryServer* server) {
  telemetry_ = server;
  server->SetMetricsProvider([this] { return TelemetryMetricsText(); });
  server->SetHealthProvider([this] { return TelemetryHealthJson(); });
}

std::string FleetRuntime::TelemetryMetricsText() const {
  // A throwaway registry per scrape: shard atomics are sampled into labeled
  // series and the per-shard queue histograms merge into fleet-wide ones.
  // Everything read here is lock-free (gauges, counters, histogram buckets)
  // or takes only the mailbox mutex (depth) — never instance state.
  obs::Metrics scrape;
  obs::Histogram* queue = scrape.GetHistogram("fleet.queue_seconds");
  obs::Histogram* wait = scrape.GetHistogram("fleet.enqueue_wait_seconds");
  for (int s = 0; s < shard_count(); ++s) {
    const Shard& sh = *shards_[static_cast<size_t>(s)];
    const std::string label = std::to_string(s);
    obs::Metrics& own = sh.shard_context()->metrics();
    scrape.GetGauge(obs::MetricWithLabel("shard.mailbox_depth", "shard", label))
        ->Set(static_cast<int64_t>(sh.mailbox_depth()));
    scrape.GetGauge(obs::MetricWithLabel("shard.in_flight", "shard", label))
        ->Set(sh.in_flight());
    scrape.GetGauge(obs::MetricWithLabel("shard.alive", "shard", label))
        ->Set(sh.alive() ? 1 : 0);
    scrape.GetCounter(obs::MetricWithLabel("shard.processed", "shard", label))
        ->Increment(sh.processed());
    scrape.GetCounter(obs::MetricWithLabel("shard.wire_in", "shard", label))
        ->Increment(own.GetCounter("shard.wire_in")->value());
    scrape.GetCounter(obs::MetricWithLabel("shard.wire_out", "shard", label))
        ->Increment(own.GetCounter("shard.wire_out")->value());
    queue->Merge(sh.queue_latency());
    wait->Merge(sh.enqueue_wait());
  }
  scrape.GetGauge("fleet.in_flight")
      ->Set(static_cast<int64_t>(in_flight_.load(std::memory_order_relaxed)));
  scrape.GetGauge("fleet.shards")->Set(shard_count());
  scrape.GetGauge("fleet.apps")->Set(static_cast<int64_t>(apps_.size()));
  scrape.GetCounter("fleet.messages_processed")->Increment(messages_processed());
  return obs::Metrics::Global().ToPrometheusText() + scrape.ToPrometheusText();
}

Json FleetRuntime::TelemetryHealthJson() const {
  Json shards = Json::Array();
  bool all_alive = true;
  for (int s = 0; s < shard_count(); ++s) {
    const Shard& sh = *shards_[static_cast<size_t>(s)];
    const bool alive = sh.alive();
    all_alive = all_alive && alive;
    Json entry = Json::Object();
    entry.Set("shard", Json(s));
    entry.Set("alive", Json(alive));
    entry.Set("mailbox_depth", Json(sh.mailbox_depth()));
    entry.Set("in_flight", Json(sh.in_flight()));
    entry.Set("processed", Json(sh.processed()));
    shards.Append(std::move(entry));
  }
  Json out = Json::Object();
  out.Set("ok", Json(all_alive));
  out.Set("shards", std::move(shards));
  out.Set("in_flight", Json(in_flight_.load(std::memory_order_relaxed)));
  out.Set("apps", Json(apps_.size()));
  return out;
}

void FleetRuntime::PublishTraces(obs::TelemetryServer* server, size_t max_traces) const {
  obs::FleetTraceAssembler assembler = AssembleTrace();
  server->PublishFullTrace(assembler.ChromeTraceJson().Dump(/*pretty=*/false) + "\n");
  size_t published = 0;
  for (uint64_t id : assembler.FleetTraceIds()) {
    if (published >= max_traces) {
      break;
    }
    Json hops = Json::Array();
    for (const obs::FleetTraceAssembler::Hop& hop : assembler.HopsOf(id)) {
      Json entry = Json::Object();
      entry.Set("hop", Json(static_cast<int>(hop.hop)));
      entry.Set("shard", Json(hop.shard));
      entry.Set("source", Json(hop.source));
      entry.Set("local_trace", Json(hop.local_trace_id));
      entry.Set("parent_span", Json(hop.parent_span));
      Json events = Json::Array();
      for (const obs::TraceEvent& event : hop.events) {
        events.Append(Json(event.ToString()));
      }
      entry.Set("events", std::move(events));
      hops.Append(std::move(entry));
    }
    Json trace = Json::Object();
    trace.Set("fleet_trace", Json(id));
    trace.Set("hops", std::move(hops));
    server->PublishTrace(id, trace.Dump(/*pretty=*/false) + "\n");
    ++published;
  }
}

}  // namespace turnstile
