#include "src/runtime/fleet.h"

#include <utility>

#include "src/support/env.h"
#include "src/support/logging.h"

namespace turnstile {

namespace {
uint64_t RouteKey(int shard, uint32_t instance) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(shard)) << 32) | instance;
}
}  // namespace

// --- serialization -----------------------------------------------------------

Json FleetSerializeMessage(const Value& msg) {
  Value value = Unbox(msg);
  if (value.IsBool()) {
    return Json(value.AsBool());
  }
  if (value.IsNumber()) {
    return Json(value.AsNumber());
  }
  if (value.IsString()) {
    return Json(value.AsString());
  }
  if (value.IsArray()) {
    Json out = Json::Array();
    for (const Value& element : value.AsArray()->elements) {
      out.Append(FleetSerializeMessage(element));
    }
    return out;
  }
  if (value.IsObject()) {
    Json out = Json::Object();
    const ObjectPtr& object = value.AsObject();
    for (Atom key : object->insertion_order) {
      if (object->Has(key)) {
        out.Set(AtomName(key), FleetSerializeMessage(object->Get(key)));
      }
    }
    return out;
  }
  // undefined, null, functions: nothing transportable — degrade to null,
  // matching what JSON.stringify would do to the first two.
  return Json(nullptr);
}

Value FleetMaterializeMessage(const Json& payload) {
  switch (payload.type()) {
    case Json::Type::kBool:
      return Value(payload.bool_value());
    case Json::Type::kNumber:
      return Value(payload.number_value());
    case Json::Type::kString:
      return Value(payload.string_value());
    case Json::Type::kArray: {
      std::vector<Value> elements;
      elements.reserve(payload.array_items().size());
      for (const Json& element : payload.array_items()) {
        elements.push_back(FleetMaterializeMessage(element));
      }
      return Value(MakeArray(std::move(elements)));
    }
    case Json::Type::kObject: {
      ObjectPtr object = MakeObject();
      for (const auto& [key, value] : payload.object_items()) {
        object->Set(key, FleetMaterializeMessage(value));
      }
      return Value(object);
    }
    case Json::Type::kNull:
      break;
  }
  return Value::Null();
}

// --- FleetRuntime ------------------------------------------------------------

int FleetRuntime::ShardsFromEnv(int fallback) {
  return static_cast<int>(EnvInt("TURNSTILE_FLEET_SHARDS", fallback, 1, 256));
}

FleetRuntime::FleetRuntime(Options options) : options_(std::move(options)) {
  if (options_.shards <= 0) {
    options_.shards = ShardsFromEnv(/*fallback=*/4);
  }
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(this, i, options_.mailbox_capacity));
  }
}

FleetRuntime::~FleetRuntime() { Stop(); }

std::string FleetRuntime::AddApp(const CorpusApp& app, int shard) {
  int target = shard;
  if (target < 0 || target >= shard_count()) {
    target = next_shard_;
    next_shard_ = (next_shard_ + 1) % shard_count();
  }
  int ordinal = per_app_counts_[app.name]++;
  std::string id = app.name + "#" + std::to_string(ordinal);
  Shard::InstanceSpec spec;
  spec.app = &app;
  spec.id = id;
  spec.seed = options_.rng_seed;
  uint32_t instance = shards_[static_cast<size_t>(target)]->AddInstance(std::move(spec));
  apps_[id] = Placement{target, instance};
  return id;
}

Status FleetRuntime::Wire(const std::string& src_id, const std::string& dst_id) {
  auto src = apps_.find(src_id);
  auto dst = apps_.find(dst_id);
  if (src == apps_.end()) {
    return NotFoundError("fleet: unknown source app '" + src_id + "'");
  }
  if (dst == apps_.end()) {
    return NotFoundError("fleet: unknown destination app '" + dst_id + "'");
  }
  if (started_) {
    return InvalidArgumentError("fleet: Wire() must precede Start()");
  }
  routes_[RouteKey(src->second.shard, src->second.instance)] = dst->second;
  shards_[static_cast<size_t>(src->second.shard)]->WireInstance(src->second.instance);
  return Status::Ok();
}

Status FleetRuntime::Start() {
  started_ = true;
  // Start every shard; each Start() blocks until that shard's instances are
  // built (on the shard's own thread), so setup parallelizes across shards.
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->Start();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->status().ok()) {
      return shard->status();
    }
  }
  return Status::Ok();
}

bool FleetRuntime::Post(const std::string& app_id, int seq, bool record) {
  auto it = apps_.find(app_id);
  if (it == apps_.end() || stopped_) {
    return false;
  }
  FleetEnvelope env;
  env.kind = FleetEnvelope::Kind::kGenerate;
  env.instance = it->second.instance;
  env.seq = seq;
  env.record = record;
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!shards_[static_cast<size_t>(it->second.shard)]->Post(std::move(env))) {
    OnProcessed();  // mailbox closed: the envelope never entered the system
    return false;
  }
  return true;
}

void FleetRuntime::RouteTerminal(int src_shard, uint32_t src_instance, const Value& msg) {
  auto it = routes_.find(RouteKey(src_shard, src_instance));
  if (it == routes_.end()) {
    return;
  }
  FleetEnvelope env;
  env.kind = FleetEnvelope::Kind::kPayload;
  env.instance = it->second.instance;
  env.payload = FleetSerializeMessage(msg);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!shards_[static_cast<size_t>(it->second.shard)]->Post(std::move(env))) {
    OnProcessed();
  }
}

void FleetRuntime::OnProcessed() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last envelope: wake Drain(). The lock pairs with the waiter's recheck,
    // closing the decide-then-sleep race.
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void FleetRuntime::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

void FleetRuntime::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->Join();
  }
}

uint64_t FleetRuntime::messages_processed() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->processed();
  }
  return total;
}

AppRuntime* FleetRuntime::runtime_of(const std::string& app_id) const {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    return nullptr;
  }
  return shards_[static_cast<size_t>(it->second.shard)]->runtime_of(it->second.instance);
}

RuntimeContext* FleetRuntime::context_of(const std::string& app_id) const {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    return nullptr;
  }
  return shards_[static_cast<size_t>(it->second.shard)]->context_of(it->second.instance);
}

std::vector<std::string> FleetRuntime::errors() const {
  std::vector<std::string> out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    out.insert(out.end(), shard->errors().begin(), shard->errors().end());
  }
  return out;
}

uint64_t FleetRuntime::MergeShardLatency(int shard, obs::Histogram* into) const {
  if (shard < 0 || shard >= shard_count()) {
    return 0;
  }
  return shards_[static_cast<size_t>(shard)]->MergeLatency(into);
}

uint64_t FleetRuntime::MergeFleetLatency(obs::Histogram* into) const {
  uint64_t merged = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    merged += shard->MergeLatency(into);
  }
  return merged;
}

}  // namespace turnstile
