// FleetRuntime: the sharded multi-tenant fleet (tentpole of this change).
//
// A fleet owns N worker shards (src/runtime/shard.h); each shard owns a set
// of app instances — isolated RuntimeContext + AppRuntime + event loop — and
// drains an MPSC mailbox on its own thread. The fleet is the router between
// them:
//
//        Post("app#i", seq)        RouteTerminal (wired app -> app)
//   caller ──────────────► shard mailbox ◄────────────── shard thread
//                               │                               ▲
//                               ▼                               │
//                        shard thread drives            serialized Json
//                        the instance's event loop      (no Value crosses
//                                                        a thread boundary)
//
// Determinism contract (what fleet_runtime_test's differential gate checks):
// a fleet run of any corpus app produces byte-identical io records,
// violations and canonical audit ledger to a single-threaded AppRuntime run
// with the same seed and message sequence. The argument: per-instance message
// order is FIFO through its shard mailbox, each instance's workload rng is
// private, contexts are isolated so cross-instance interleaving shares no
// state, and per-shard Policy sharing only memoizes label-set handles —
// rendered label names, the only thing that leaves the pool, are unaffected.
//
// Shutdown / aggregation entry points (Drain, Stop, MergeShardLatency,
// runtime_of, errors) require quiescence: no concurrent Post. Aggregate
// latency is merged from each context's private `multi.proc_seconds`
// histogram via obs::Histogram::Merge — hot paths observe into per-context
// instruments without ever locking.
#ifndef TURNSTILE_SRC_RUNTIME_FLEET_H_
#define TURNSTILE_SRC_RUNTIME_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/obs/fleet_trace.h"
#include "src/obs/telemetry.h"
#include "src/runtime/shard.h"
#include "src/support/status.h"

namespace turnstile {

// Serializes a flow output message for cross-shard transport: deep-unboxed
// (labels never cross a tenant boundary — the receiving app re-labels its
// own inputs), objects keep insertion order, arrays map element-wise,
// undefined and functions degrade to null. Exposed so the differential test
// can capture a single-threaded run's terminal sends through the identical
// transformation.
Json FleetSerializeMessage(const Value& msg);

// The inverse transport step: rebuilds a Value tree from serialized Json.
// No workload $-placeholder expansion happens here — the payload is data.
Value FleetMaterializeMessage(const Json& payload);

class FleetRuntime {
 public:
  struct Options {
    // Worker shard count. 0 = take TURNSTILE_FLEET_SHARDS (strictly parsed;
    // malformed values warn once and fall back), default 4.
    int shards = 0;
    // Per-shard mailbox bound for external posts (see ShardMailbox).
    size_t mailbox_capacity = 1024;
    AppVersion version = AppVersion::kSelective;
    std::optional<ExecTier> tier;
    // Seed for every instance's private workload rng (same seed per instance
    // mirrors the single-threaded benches, keeping runs comparable).
    uint64_t rng_seed = 0xBE11C0DE;
    // >0 enables each context's audit ledger with this capacity before the
    // instance is built, so setup-time events are ledgered exactly as a
    // single-threaded enable-then-Create sequence would.
    size_t audit_capacity = 0;
    // Share one parsed Policy among same-app instances on a shard (the
    // per-shard label interning story). Off = every instance parses its own.
    bool share_policies = true;
    // >0 enables each context's trace recorder with a ring of this many
    // events AND fleet trace-id minting at Post(): every injected message
    // gets a fleet-wide trace id carried across wire hops, and
    // AssembleTrace() can stitch the per-context rings after a drain. 0
    // (default) leaves tracing exactly as before — the disabled path adds no
    // work beyond the envelope's extra fields.
    size_t trace_capacity = 0;
  };

  FleetRuntime() : FleetRuntime(Options()) {}
  explicit FleetRuntime(Options options);
  ~FleetRuntime();

  // --- configuration (before Start) -----------------------------------------
  // Adds an instance of `app`, round-robin across shards (or pinned when
  // `shard` >= 0). Returns the fleet-wide app id "name#k" (k = per-app
  // instance ordinal).
  std::string AddApp(const CorpusApp& app, int shard = -1);

  // Routes every terminal send (flow output) of `src_id` into `dst_id`'s
  // entry point as a fresh delivery — the cross-shard app→app message path.
  Status Wire(const std::string& src_id, const std::string& dst_id);

  // --- lifecycle --------------------------------------------------------------
  // Starts every shard; each builds its instances on its own thread. Returns
  // the first setup error (the fleet still runs with surviving instances).
  Status Start();

  // Enqueues workload message #seq for `app_id`. Blocks under backpressure
  // when the destination mailbox is full (external callers only). `record`
  // observes the per-message latency into the instance's context-private
  // multi.proc_seconds histogram. Returns false for unknown ids or after
  // Stop().
  bool Post(const std::string& app_id, int seq, bool record = true);

  // Blocks until every posted envelope — including envelopes spawned by
  // wired terminal routes — has been processed. Caller must not Post
  // concurrently.
  void Drain();

  // Closes every mailbox and joins the shard threads. Idempotent; the
  // destructor calls it.
  void Stop();

  // --- inspection -------------------------------------------------------------
  const Options& options() const { return options_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  const Shard& shard(int i) const { return *shards_[static_cast<size_t>(i)]; }
  uint64_t messages_processed() const;

  // Quiescent-only (after Drain with no concurrent posts, or after Stop).
  AppRuntime* runtime_of(const std::string& app_id) const;
  RuntimeContext* context_of(const std::string& app_id) const;
  std::vector<std::string> errors() const;  // setup + drive errors, all shards

  // Latency aggregation via Histogram::Merge: `into` must carry
  // Histogram::DefaultLatencyBounds(). Returns observations merged.
  uint64_t MergeShardLatency(int shard, obs::Histogram* into) const;
  uint64_t MergeFleetLatency(obs::Histogram* into) const;
  // Same shape for the shard-level queue telemetry: enqueue->dequeue latency
  // and bounded-push backpressure stalls, merged across every shard.
  uint64_t MergeQueueLatency(obs::Histogram* into) const;
  uint64_t MergeEnqueueWait(obs::Histogram* into) const;

  // Quiescent-only: joins every instance's trace ring with the shards'
  // fleet-trace bindings (requires Options::trace_capacity > 0 to have
  // anything to join). See obs/fleet_trace.h.
  obs::FleetTraceAssembler AssembleTrace() const;

  // --- live telemetry ---------------------------------------------------------
  // Wires this fleet into a TelemetryServer: /metrics additionally serves
  // the per-shard health series + fleet-wide queue histograms (all read from
  // lock-free instruments — safe while shards run), /healthz reports
  // per-shard liveness, mailbox depth and in-flight counts. Stop() detaches
  // (ClearProviders), which blocks until any in-flight request is done.
  void AttachTelemetry(obs::TelemetryServer* server);
  // The provider bodies, exposed for tests and one-shot snapshots.
  std::string TelemetryMetricsText() const;
  Json TelemetryHealthJson() const;
  // Quiescent-only: assembles the fleet trace and publishes it to `server` —
  // the full Chrome export at /traces plus per-fleet-trace hop JSON at
  // /traces/<id> for the first `max_traces` ids.
  void PublishTraces(obs::TelemetryServer* server, size_t max_traces = 32) const;

  // --- shard-internal ---------------------------------------------------------
  // Called by a shard thread for each wired terminal send: serializes and
  // posts into the destination instance's shard (unbounded — shard origin),
  // stamping the outgoing hop's fleet trace context onto the envelope.
  void RouteTerminal(int src_shard, uint32_t src_instance, const Value& msg,
                     const FleetTraceContext& trace);
  // Called by a shard thread after each processed envelope (drain ticks).
  void OnProcessed();

  // The TURNSTILE_FLEET_SHARDS resolution (exposed for the env-contract
  // test): strict integer in [1, 256], once-only warning on garbage.
  static int ShardsFromEnv(int fallback);

 private:
  struct Placement {
    int shard = 0;
    uint32_t instance = 0;
  };

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, Placement> apps_;  // app id -> placement
  std::unordered_map<std::string, int> per_app_counts_;
  // (src shard, src instance) -> destination placement, frozen at Start().
  std::unordered_map<uint64_t, Placement> routes_;
  int next_shard_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> next_fleet_trace_{1};  // minted when trace_capacity > 0
  obs::TelemetryServer* telemetry_ = nullptr;  // attached server, detached in Stop
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_RUNTIME_FLEET_H_
