// One worker shard of the fleet runtime (see fleet.h for the full picture).
//
// A shard is a thread that *owns* a set of app instances: each instance is an
// isolated RuntimeContext + AppRuntime + flow-engine event loop, built on the
// shard's own thread and never touched from any other thread while the shard
// runs. Work arrives through an MPSC mailbox of FleetEnvelopes; the shard
// thread drains it in FIFO order, so deliveries to any single instance are
// processed in exactly the order they were posted — the property the
// differential gate (fleet vs single-threaded byte-identity) rests on.
//
// Ownership story, per shard:
//   - instances (context, interpreter, engine, tracker): shard-thread only,
//   - the per-shard Policy cache: same-app instances on one shard share one
//     parsed Policy, hence one LabelSetPool and RuleGraph with their memo
//     caches. The caches are unsynchronized by design — sharing never crosses
//     the shard boundary,
//   - the mailbox: the only cross-thread structure (mutex + condvars).
#ifndef TURNSTILE_SRC_RUNTIME_SHARD_H_
#define TURNSTILE_SRC_RUNTIME_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/runtime/context.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace turnstile {

class FleetRuntime;

// One unit of shard work: either "generate workload message #seq from the
// instance's template and drive it" (the bench / test injection path) or
// "materialize this serialized payload and drive it" (the cross-shard route
// path). Envelopes own all their data — no interpreter Value ever crosses a
// thread boundary; cross-shard payloads travel as plain Json.
struct FleetEnvelope {
  enum class Kind { kGenerate, kPayload };
  Kind kind = Kind::kGenerate;
  uint32_t instance = 0;  // shard-local instance index
  int seq = 0;            // kGenerate: workload sequence number
  bool record = false;    // observe processing latency into multi.proc_seconds
  Json payload;           // kPayload: the serialized message
};

// Bounded MPSC mailbox: many producers, one consumer (the shard thread).
//
// Backpressure policy: a *bounded* push blocks until the queue drops below
// capacity — external injectors (benches, tests, ingress adapters) therefore
// experience end-to-end backpressure instead of unbounded memory growth. A
// push with bounded=false enqueues unconditionally; shard threads use it for
// routed messages, because a full A→B mailbox must never block shard A while
// a full B→A mailbox blocks shard B (the classic router deadlock).
class ShardMailbox {
 public:
  explicit ShardMailbox(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Enqueues. Returns false (dropping the envelope) only when the mailbox is
  // closed. Blocks while full if `bounded`.
  bool Push(FleetEnvelope env, bool bounded);

  // Blocks until work arrives or the mailbox closes, then moves *everything*
  // queued into `batch` (appended). Returns false when closed and empty —
  // the consumer's termination condition.
  bool PopAll(std::vector<FleetEnvelope>* batch);

  // Wakes every blocked producer and consumer; subsequent pushes are
  // rejected. Already-queued envelopes still drain through PopAll.
  void Close();

  size_t depth() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<FleetEnvelope> queue_;
  bool closed_ = false;
};

// A worker shard. Configure (AddInstance/WireInstance) from the fleet thread
// before Start(); after Start() the only safe cross-thread entry is Post().
// Accessors over instances (runtime_of, context_of, errors) are valid only
// while the fleet is quiescent: after Drain() with no concurrent posts, or
// after Join().
class Shard {
 public:
  struct InstanceSpec {
    const CorpusApp* app = nullptr;
    std::string id;     // fleet-wide app id ("name#k"), for error reports
    uint64_t seed = 0;  // workload rng seed
    bool wired = false; // terminal sends route onward through the fleet
  };

  Shard(FleetRuntime* fleet, int index, size_t mailbox_capacity);
  ~Shard();

  // --- fleet-thread, pre-Start ----------------------------------------------
  uint32_t AddInstance(InstanceSpec spec);
  void WireInstance(uint32_t instance);

  // Launches the shard thread, which builds every instance (parse, analyze,
  // instrument, compile — the per-tenant cold path) before it starts draining
  // the mailbox. Start() returns once setup finished; a setup failure is
  // reported in status() and the shard runs with the surviving instances.
  void Start();

  // Close the mailbox and join the thread. Idempotent.
  void Join();

  // --- any thread -----------------------------------------------------------
  // Enqueues an envelope. Bounded (blocking when full) unless the caller is
  // itself a shard thread — see ShardMailbox for the deadlock rationale.
  bool Post(FleetEnvelope env);

  // The shard whose thread the caller is running on, or nullptr.
  static Shard* Current();

  int index() const { return index_; }
  size_t instance_count() const { return specs_.size(); }
  size_t mailbox_depth() const { return mailbox_.depth(); }
  uint64_t processed() const { return processed_.load(std::memory_order_relaxed); }

  // --- quiescent-only -------------------------------------------------------
  const Status& status() const { return status_; }
  AppRuntime* runtime_of(uint32_t instance) const;
  RuntimeContext* context_of(uint32_t instance) const;
  // Per-message drive errors ("app#3: TypeError ..."), in processing order.
  const std::vector<std::string>& errors() const { return errors_; }
  // Folds every instance's private multi.proc_seconds histogram into `into`
  // (which must carry Histogram::DefaultLatencyBounds). Returns observations
  // merged.
  uint64_t MergeLatency(obs::Histogram* into) const;

 private:
  struct Instance {
    InstanceSpec spec;
    std::unique_ptr<RuntimeContext> context;
    std::unique_ptr<AppRuntime> runtime;
    Rng rng{0};
    obs::Histogram* latency = nullptr;  // context-private multi.proc_seconds
  };

  void Run();
  void BuildInstances();
  void Process(const FleetEnvelope& env);

  FleetRuntime* const fleet_;
  const int index_;
  ShardMailbox mailbox_;

  std::vector<InstanceSpec> specs_;  // frozen at Start()
  std::vector<Instance> instances_;  // shard-thread owned after Start()
  // Per-shard label interning: one parsed Policy per app, shared by every
  // same-app instance on this shard (and only this shard).
  std::unordered_map<const CorpusApp*, std::shared_ptr<Policy>> policies_;

  std::thread thread_;
  bool started_ = false;
  Status status_ = Status::Ok();
  std::vector<std::string> errors_;
  std::atomic<uint64_t> processed_{0};

  std::mutex setup_mu_;
  std::condition_variable setup_cv_;
  bool setup_done_ = false;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_RUNTIME_SHARD_H_
