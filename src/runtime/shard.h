// One worker shard of the fleet runtime (see fleet.h for the full picture).
//
// A shard is a thread that *owns* a set of app instances: each instance is an
// isolated RuntimeContext + AppRuntime + flow-engine event loop, built on the
// shard's own thread and never touched from any other thread while the shard
// runs. Work arrives through an MPSC mailbox of FleetEnvelopes; the shard
// thread drains it in FIFO order, so deliveries to any single instance are
// processed in exactly the order they were posted — the property the
// differential gate (fleet vs single-threaded byte-identity) rests on.
//
// Ownership story, per shard:
//   - instances (context, interpreter, engine, tracker): shard-thread only,
//   - the per-shard Policy cache: same-app instances on one shard share one
//     parsed Policy, hence one LabelSetPool and RuleGraph with their memo
//     caches. The caches are unsynchronized by design — sharing never crosses
//     the shard boundary,
//   - the mailbox: the only cross-thread structure (mutex + condvars).
#ifndef TURNSTILE_SRC_RUNTIME_SHARD_H_
#define TURNSTILE_SRC_RUNTIME_SHARD_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/obs/metrics.h"
#include "src/runtime/context.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace turnstile {

class FleetRuntime;

// The fleet-wide trace identity a message carries across shard (and thus
// serialization) boundaries. Local TraceRecorder ids restart at 1 per
// context, so without this a message crossing Wire(a, b) loses its causal
// story at the Json boundary; with it, the receiving shard binds whatever
// local trace the delivery starts to {fleet id, source span, hop+1} and a
// post-drain FleetTraceAssembler stitches the chain back together.
//
// The context rides the *envelope only* — it is never recorded into the
// AuditLedger, so the fleet-vs-single-threaded CanonicalLog() byte-identity
// gate is untouched.
struct FleetTraceContext {
  uint64_t fleet_trace_id = 0;  // minted once at FleetRuntime::Post; 0 = untraced
  uint64_t parent_span = 0;     // source shard's local trace id (0 = injection root)
  uint32_t hop = 0;             // wire crossings so far (0 = the injected hop)
};

// One unit of shard work: either "generate workload message #seq from the
// instance's template and drive it" (the bench / test injection path) or
// "materialize this serialized payload and drive it" (the cross-shard route
// path). Envelopes own all their data — no interpreter Value ever crosses a
// thread boundary; cross-shard payloads travel as plain Json.
struct FleetEnvelope {
  enum class Kind { kGenerate, kPayload };
  Kind kind = Kind::kGenerate;
  uint32_t instance = 0;  // shard-local instance index
  int seq = 0;            // kGenerate: workload sequence number
  bool record = false;    // observe processing latency into multi.proc_seconds
  Json payload;           // kPayload: the serialized message
  FleetTraceContext trace;
  // Stamped by ShardMailbox::Push at admission; the shard thread observes
  // enqueue->dequeue latency into shard.queue_seconds from it.
  std::chrono::steady_clock::time_point enqueued_at{};
};

// Bounded MPSC mailbox: many producers, one consumer (the shard thread).
//
// Backpressure policy: a *bounded* push blocks until the queue drops below
// capacity — external injectors (benches, tests, ingress adapters) therefore
// experience end-to-end backpressure instead of unbounded memory growth. A
// push with bounded=false enqueues unconditionally; shard threads use it for
// routed messages, because a full A→B mailbox must never block shard A while
// a full B→A mailbox blocks shard B (the classic router deadlock).
class ShardMailbox {
 public:
  explicit ShardMailbox(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Enqueues. Returns false (dropping the envelope) only when the mailbox is
  // closed. Blocks while full if `bounded`.
  bool Push(FleetEnvelope env, bool bounded);

  // Blocks until work arrives or the mailbox closes, then moves *everything*
  // queued into `batch` (appended). Returns false when closed and empty —
  // the consumer's termination condition.
  bool PopAll(std::vector<FleetEnvelope>* batch);

  // Wakes every blocked producer and consumer; subsequent pushes are
  // rejected. Already-queued envelopes still drain through PopAll.
  void Close();

  size_t depth() const;

  // Health telemetry hookup (call before any Push): `depth` tracks the queue
  // length after every push/drain, `wait` observes how long each *bounded*
  // push blocked on a full queue (the backpressure stall signal). Both are
  // lock-free instruments, updated under the mailbox mutex.
  void BindStats(obs::Gauge* depth, obs::Histogram* wait);

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<FleetEnvelope> queue_;
  bool closed_ = false;
  obs::Gauge* depth_gauge_ = nullptr;       // optional, see BindStats
  obs::Histogram* wait_hist_ = nullptr;     // optional, see BindStats
};

// The shard's record of where one local trace sits in a fleet trace: local
// trace `local_trace_id` of instance `instance` was started while processing
// an envelope carrying `trace`. Appended by the shard thread during
// Process(); read quiescently by FleetRuntime::AssembleTrace().
struct ShardTraceBinding {
  uint32_t instance = 0;
  uint64_t local_trace_id = 0;
  FleetTraceContext trace;
};

// A worker shard. Configure (AddInstance/WireInstance) from the fleet thread
// before Start(); after Start() the only safe cross-thread entry is Post().
// Accessors over instances (runtime_of, context_of, errors) are valid only
// while the fleet is quiescent: after Drain() with no concurrent posts, or
// after Join().
class Shard {
 public:
  struct InstanceSpec {
    const CorpusApp* app = nullptr;
    std::string id;     // fleet-wide app id ("name#k"), for error reports
    uint64_t seed = 0;  // workload rng seed
    bool wired = false; // terminal sends route onward through the fleet
  };

  Shard(FleetRuntime* fleet, int index, size_t mailbox_capacity);
  ~Shard();

  // --- fleet-thread, pre-Start ----------------------------------------------
  uint32_t AddInstance(InstanceSpec spec);
  void WireInstance(uint32_t instance);

  // Launches the shard thread, which builds every instance (parse, analyze,
  // instrument, compile — the per-tenant cold path) before it starts draining
  // the mailbox. Start() returns once setup finished; a setup failure is
  // reported in status() and the shard runs with the surviving instances.
  void Start();

  // Close the mailbox and join the thread. Idempotent.
  void Join();

  // --- any thread -----------------------------------------------------------
  // Enqueues an envelope. Bounded (blocking when full) unless the caller is
  // itself a shard thread — see ShardMailbox for the deadlock rationale.
  bool Post(FleetEnvelope env);

  // The shard whose thread the caller is running on, or nullptr.
  static Shard* Current();

  int index() const { return index_; }
  size_t instance_count() const { return specs_.size(); }
  size_t mailbox_depth() const { return mailbox_.depth(); }
  uint64_t processed() const { return processed_.load(std::memory_order_relaxed); }
  // True between the shard thread finishing setup and the drain loop exiting
  // — the /healthz liveness bit.
  bool alive() const { return alive_.load(std::memory_order_acquire); }
  // Envelopes posted to this shard and not yet processed (atomic).
  int64_t in_flight() const { return in_flight_gauge_->value(); }

  // The shard's own health registry (shard.mailbox_depth, shard.in_flight,
  // shard.enqueue_wait_seconds, shard.queue_seconds, shard.wire_in,
  // shard.wire_out). Every instrument inside is a lock-free atomic, safe to
  // read from the telemetry thread while the shard runs — unlike the
  // per-instance contexts, which are quiescent-only.
  RuntimeContext* shard_context() const { return shard_context_.get(); }
  // Shard-level queue telemetry, readable while running (atomics).
  const obs::Histogram& queue_latency() const { return *queue_hist_; }
  const obs::Histogram& enqueue_wait() const { return *wait_hist_; }

  // --- quiescent-only -------------------------------------------------------
  const Status& status() const { return status_; }
  AppRuntime* runtime_of(uint32_t instance) const;
  RuntimeContext* context_of(uint32_t instance) const;
  // The fleet-wide app id of an instance ("name#k"; "" out of range).
  const std::string& instance_id(uint32_t instance) const;
  // Per-message drive errors ("app#3: TypeError ..."), in processing order.
  const std::vector<std::string>& errors() const { return errors_; }
  // Local-trace -> fleet-trace bindings accumulated by Process().
  const std::vector<ShardTraceBinding>& trace_bindings() const { return trace_bindings_; }
  // Folds every instance's private multi.proc_seconds histogram into `into`
  // (which must carry Histogram::DefaultLatencyBounds). Returns observations
  // merged.
  uint64_t MergeLatency(obs::Histogram* into) const;

 private:
  struct Instance {
    InstanceSpec spec;
    std::unique_ptr<RuntimeContext> context;
    std::unique_ptr<AppRuntime> runtime;
    Rng rng{0};
    obs::Histogram* latency = nullptr;  // context-private multi.proc_seconds
  };

  void Run();
  void BuildInstances();
  void Process(const FleetEnvelope& env);

  FleetRuntime* const fleet_;
  const int index_;
  ShardMailbox mailbox_;

  // Health telemetry: its own isolated context so shard-level series never
  // collide with instance registries, instruments cached at construction.
  std::unique_ptr<RuntimeContext> shard_context_;
  obs::Gauge* depth_gauge_ = nullptr;      // shard.mailbox_depth
  obs::Gauge* in_flight_gauge_ = nullptr;  // shard.in_flight
  obs::Histogram* wait_hist_ = nullptr;    // shard.enqueue_wait_seconds
  obs::Histogram* queue_hist_ = nullptr;   // shard.queue_seconds
  obs::Counter* wire_in_ = nullptr;        // routed envelopes received
  obs::Counter* wire_out_ = nullptr;       // terminal sends routed onward

  std::vector<InstanceSpec> specs_;  // frozen at Start()
  std::vector<Instance> instances_;  // shard-thread owned after Start()
  // Per-shard label interning: one parsed Policy per app, shared by every
  // same-app instance on this shard (and only this shard).
  std::unordered_map<const CorpusApp*, std::shared_ptr<Policy>> policies_;

  std::thread thread_;
  bool started_ = false;
  Status status_ = Status::Ok();
  std::vector<std::string> errors_;
  std::atomic<uint64_t> processed_{0};
  std::atomic<bool> alive_{false};

  // Trace stitching state, shard-thread only while running.
  FleetTraceContext current_env_trace_;
  std::vector<ShardTraceBinding> trace_bindings_;

  std::mutex setup_mu_;
  std::condition_variable setup_cv_;
  bool setup_done_ = false;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_RUNTIME_SHARD_H_
