#include "src/runtime/shard.h"

#include <chrono>
#include <utility>

#include "src/runtime/fleet.h"
#include "src/support/logging.h"

namespace turnstile {

namespace {
thread_local Shard* g_current_shard = nullptr;
}  // namespace

// --- ShardMailbox ------------------------------------------------------------

bool ShardMailbox::Push(FleetEnvelope env, bool bounded) {
  std::unique_lock<std::mutex> lock(mu_);
  if (bounded) {
    not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
  }
  if (closed_) {
    return false;
  }
  queue_.push_back(std::move(env));
  not_empty_.notify_one();
  return true;
}

bool ShardMailbox::PopAll(std::vector<FleetEnvelope>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) {
    return false;  // closed and drained
  }
  while (!queue_.empty()) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  not_full_.notify_all();
  return true;
}

void ShardMailbox::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t ShardMailbox::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

// --- Shard -------------------------------------------------------------------

Shard::Shard(FleetRuntime* fleet, int index, size_t mailbox_capacity)
    : fleet_(fleet), index_(index), mailbox_(mailbox_capacity) {}

Shard::~Shard() { Join(); }

uint32_t Shard::AddInstance(InstanceSpec spec) {
  specs_.push_back(std::move(spec));
  return static_cast<uint32_t>(specs_.size() - 1);
}

void Shard::WireInstance(uint32_t instance) { specs_[instance].wired = true; }

void Shard::Start() {
  started_ = true;
  thread_ = std::thread([this] { Run(); });
  std::unique_lock<std::mutex> lock(setup_mu_);
  setup_cv_.wait(lock, [this] { return setup_done_; });
}

void Shard::Join() {
  if (!started_) {
    return;
  }
  mailbox_.Close();
  if (thread_.joinable()) {
    thread_.join();
  }
  started_ = false;
}

bool Shard::Post(FleetEnvelope env) {
  // Shard-thread-origin posts (terminal routes) bypass the bound so a cycle
  // of full mailboxes can never block the threads that drain them.
  return mailbox_.Push(std::move(env), /*bounded=*/g_current_shard == nullptr);
}

Shard* Shard::Current() { return g_current_shard; }

void Shard::BuildInstances() {
  const FleetRuntime::Options& options = fleet_->options();
  instances_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    Instance& inst = instances_[i];
    inst.spec = specs_[i];
    inst.rng = Rng(inst.spec.seed);
    inst.context = RuntimeContext::CreateIsolated();
    if (options.audit_capacity > 0) {
      // Enabled before Create, so setup-time events land in the ledger
      // exactly as a single-threaded enable-then-Create run records them.
      inst.context->audit().Enable(options.audit_capacity);
    }
    std::shared_ptr<Policy> shared;
    if (options.share_policies && options.version != AppVersion::kOriginal) {
      auto it = policies_.find(inst.spec.app);
      if (it != policies_.end()) {
        shared = it->second;
      }
    }
    auto runtime =
        AppRuntime::Create(*inst.spec.app, options.version, options.tier, inst.context.get(),
                           shared);
    if (!runtime.ok()) {
      if (status_.ok()) {
        status_ = runtime.status();
      }
      errors_.push_back(inst.spec.id + ": setup: " + runtime.status().ToString());
      inst.context.reset();
      continue;
    }
    inst.runtime = std::move(runtime).value();
    if (options.share_policies && shared == nullptr && inst.runtime->policy() != nullptr) {
      policies_[inst.spec.app] = inst.runtime->policy();
    }
    inst.latency = inst.context->metrics().GetHistogram("multi.proc_seconds");
    if (inst.spec.wired) {
      FleetRuntime* fleet = fleet_;
      int shard_index = index_;
      uint32_t instance_index = static_cast<uint32_t>(i);
      inst.runtime->engine().set_terminal_sink(
          [fleet, shard_index, instance_index](const std::string&, const Value& msg) {
            fleet->RouteTerminal(shard_index, instance_index, msg);
          });
    }
  }
}

void Shard::Process(const FleetEnvelope& env) {
  if (env.instance >= instances_.size()) {
    return;
  }
  Instance& inst = instances_[env.instance];
  if (inst.runtime == nullptr) {
    return;  // setup failed; envelopes for it drain as no-ops
  }
  const auto start = std::chrono::steady_clock::now();
  Status status = env.kind == FleetEnvelope::Kind::kGenerate
                      ? inst.runtime->DriveMessage(&inst.rng, env.seq)
                      : inst.runtime->InjectValue(FleetMaterializeMessage(env.payload));
  if (env.record) {
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    inst.latency->Observe(elapsed.count());
  }
  if (!status.ok()) {
    errors_.push_back(inst.spec.id + ": " + status.ToString());
  }
}

void Shard::Run() {
  g_current_shard = this;
  BuildInstances();
  {
    std::lock_guard<std::mutex> lock(setup_mu_);
    setup_done_ = true;
  }
  setup_cv_.notify_all();

  std::vector<FleetEnvelope> batch;
  while (mailbox_.PopAll(&batch)) {
    for (const FleetEnvelope& env : batch) {
      Process(env);
      processed_.fetch_add(1, std::memory_order_relaxed);
      fleet_->OnProcessed();
    }
    batch.clear();
  }
  g_current_shard = nullptr;
}

AppRuntime* Shard::runtime_of(uint32_t instance) const {
  return instance < instances_.size() ? instances_[instance].runtime.get() : nullptr;
}

RuntimeContext* Shard::context_of(uint32_t instance) const {
  return instance < instances_.size() ? instances_[instance].context.get() : nullptr;
}

uint64_t Shard::MergeLatency(obs::Histogram* into) const {
  uint64_t merged = 0;
  for (const Instance& inst : instances_) {
    if (inst.latency == nullptr) {
      continue;
    }
    if (into->Merge(*inst.latency)) {
      merged += inst.latency->count();
    }
  }
  return merged;
}

}  // namespace turnstile
