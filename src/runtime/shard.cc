#include "src/runtime/shard.h"

#include <chrono>
#include <utility>

#include "src/runtime/fleet.h"
#include "src/support/logging.h"

namespace turnstile {

namespace {
thread_local Shard* g_current_shard = nullptr;
}  // namespace

// --- ShardMailbox ------------------------------------------------------------

bool ShardMailbox::Push(FleetEnvelope env, bool bounded) {
  std::unique_lock<std::mutex> lock(mu_);
  if (bounded) {
    if (wait_hist_ != nullptr && (closed_ || queue_.size() >= capacity_)) {
      // Blocked admission: measure the backpressure stall. The unblocked
      // path skips the clock entirely so the happy case stays two loads.
      const auto wait_start = std::chrono::steady_clock::now();
      not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
      const std::chrono::duration<double> stalled =
          std::chrono::steady_clock::now() - wait_start;
      wait_hist_->Observe(stalled.count());
    } else {
      not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
    }
  }
  if (closed_) {
    return false;
  }
  // Stamp after admission so queue latency excludes the bounded wait (that
  // stall is its own histogram).
  env.enqueued_at = std::chrono::steady_clock::now();
  queue_.push_back(std::move(env));
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  }
  not_empty_.notify_one();
  return true;
}

bool ShardMailbox::PopAll(std::vector<FleetEnvelope>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) {
    return false;  // closed and drained
  }
  while (!queue_.empty()) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(0);
  }
  not_full_.notify_all();
  return true;
}

void ShardMailbox::BindStats(obs::Gauge* depth, obs::Histogram* wait) {
  std::lock_guard<std::mutex> lock(mu_);
  depth_gauge_ = depth;
  wait_hist_ = wait;
}

void ShardMailbox::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t ShardMailbox::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

// --- Shard -------------------------------------------------------------------

Shard::Shard(FleetRuntime* fleet, int index, size_t mailbox_capacity)
    : fleet_(fleet), index_(index), mailbox_(mailbox_capacity) {
  shard_context_ = RuntimeContext::CreateIsolated();
  obs::Metrics& metrics = shard_context_->metrics();
  depth_gauge_ = metrics.GetGauge("shard.mailbox_depth");
  in_flight_gauge_ = metrics.GetGauge("shard.in_flight");
  wait_hist_ = metrics.GetHistogram("shard.enqueue_wait_seconds");
  queue_hist_ = metrics.GetHistogram("shard.queue_seconds");
  wire_in_ = metrics.GetCounter("shard.wire_in");
  wire_out_ = metrics.GetCounter("shard.wire_out");
  mailbox_.BindStats(depth_gauge_, wait_hist_);
}

Shard::~Shard() { Join(); }

uint32_t Shard::AddInstance(InstanceSpec spec) {
  specs_.push_back(std::move(spec));
  return static_cast<uint32_t>(specs_.size() - 1);
}

void Shard::WireInstance(uint32_t instance) { specs_[instance].wired = true; }

void Shard::Start() {
  started_ = true;
  thread_ = std::thread([this] { Run(); });
  std::unique_lock<std::mutex> lock(setup_mu_);
  setup_cv_.wait(lock, [this] { return setup_done_; });
}

void Shard::Join() {
  if (!started_) {
    return;
  }
  mailbox_.Close();
  if (thread_.joinable()) {
    thread_.join();
  }
  started_ = false;
}

bool Shard::Post(FleetEnvelope env) {
  // Shard-thread-origin posts (terminal routes) bypass the bound so a cycle
  // of full mailboxes can never block the threads that drain them.
  const bool accepted = mailbox_.Push(std::move(env), /*bounded=*/g_current_shard == nullptr);
  if (accepted) {
    in_flight_gauge_->Add(1);
  }
  return accepted;
}

Shard* Shard::Current() { return g_current_shard; }

void Shard::BuildInstances() {
  const FleetRuntime::Options& options = fleet_->options();
  instances_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    Instance& inst = instances_[i];
    inst.spec = specs_[i];
    inst.rng = Rng(inst.spec.seed);
    inst.context = RuntimeContext::CreateIsolated();
    if (options.audit_capacity > 0) {
      // Enabled before Create, so setup-time events land in the ledger
      // exactly as a single-threaded enable-then-Create run records them.
      inst.context->audit().Enable(options.audit_capacity);
    }
    if (options.trace_capacity > 0) {
      // After the audit enable (which co-enables a default-sized recorder)
      // so the requested ring size wins. Nothing is recorded yet, so the
      // capacity change clears nothing.
      inst.context->trace_recorder().Enable(options.trace_capacity);
    }
    std::shared_ptr<Policy> shared;
    if (options.share_policies && options.version != AppVersion::kOriginal) {
      auto it = policies_.find(inst.spec.app);
      if (it != policies_.end()) {
        shared = it->second;
      }
    }
    auto runtime =
        AppRuntime::Create(*inst.spec.app, options.version, options.tier, inst.context.get(),
                           shared);
    if (!runtime.ok()) {
      if (status_.ok()) {
        status_ = runtime.status();
      }
      errors_.push_back(inst.spec.id + ": setup: " + runtime.status().ToString());
      inst.context.reset();
      continue;
    }
    inst.runtime = std::move(runtime).value();
    if (options.share_policies && shared == nullptr && inst.runtime->policy() != nullptr) {
      policies_[inst.spec.app] = inst.runtime->policy();
    }
    inst.latency = inst.context->metrics().GetHistogram("multi.proc_seconds");
    if (inst.spec.wired) {
      FleetRuntime* fleet = fleet_;
      Shard* shard = this;
      int shard_index = index_;
      uint32_t instance_index = static_cast<uint32_t>(i);
      inst.runtime->engine().set_terminal_sink(
          [fleet, shard, shard_index, instance_index](const std::string&, const Value& msg,
                                                      uint64_t trace_id) {
            // Runs on the shard thread mid-drive: the envelope being
            // processed is still current, so its fleet identity extends to
            // the outgoing hop. parent_span is the *local* trace the send
            // happened under — the receiving shard's binding points back to
            // it, which is what the assembler stitches on.
            FleetTraceContext hop = shard->current_env_trace_;
            hop.parent_span = trace_id;
            ++hop.hop;
            shard->wire_out_->Increment();
            fleet->RouteTerminal(shard_index, instance_index, msg, hop);
          });
    }
  }
}

void Shard::Process(const FleetEnvelope& env) {
  if (env.instance >= instances_.size()) {
    return;
  }
  Instance& inst = instances_[env.instance];
  if (inst.runtime == nullptr) {
    return;  // setup failed; envelopes for it drain as no-ops
  }
  if (env.kind == FleetEnvelope::Kind::kPayload) {
    wire_in_->Increment();
  }
  const auto start = std::chrono::steady_clock::now();
  if (env.enqueued_at.time_since_epoch().count() != 0) {
    const std::chrono::duration<double> queued = start - env.enqueued_at;
    queue_hist_->Observe(queued.count());
  }
  // While the drive runs, terminal sinks see this envelope's fleet identity
  // (the sink fires on this thread, mid-DriveMessage/InjectValue).
  current_env_trace_ = env.trace;
  obs::TraceRecorder& recorder = inst.context->trace_recorder();
  const uint64_t traces_before = recorder.enabled() ? recorder.traces_started() : 0;
  Status status = env.kind == FleetEnvelope::Kind::kGenerate
                      ? inst.runtime->DriveMessage(&inst.rng, env.seq)
                      : inst.runtime->InjectValue(FleetMaterializeMessage(env.payload));
  if (recorder.enabled()) {
    // Every local trace the drive started belongs to this envelope's fleet
    // trace: bind them so the post-drain assembler can stitch across shards.
    for (uint64_t local = traces_before + 1; local <= recorder.traces_started(); ++local) {
      trace_bindings_.push_back(ShardTraceBinding{env.instance, local, env.trace});
    }
  }
  current_env_trace_ = FleetTraceContext{};
  if (env.record) {
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    inst.latency->Observe(elapsed.count());
  }
  if (!status.ok()) {
    errors_.push_back(inst.spec.id + ": " + status.ToString());
  }
}

void Shard::Run() {
  g_current_shard = this;
  BuildInstances();
  {
    std::lock_guard<std::mutex> lock(setup_mu_);
    setup_done_ = true;
  }
  setup_cv_.notify_all();
  alive_.store(true, std::memory_order_release);

  std::vector<FleetEnvelope> batch;
  while (mailbox_.PopAll(&batch)) {
    for (const FleetEnvelope& env : batch) {
      Process(env);
      processed_.fetch_add(1, std::memory_order_relaxed);
      in_flight_gauge_->Add(-1);
      fleet_->OnProcessed();
    }
    batch.clear();
  }
  alive_.store(false, std::memory_order_release);
  g_current_shard = nullptr;
}

AppRuntime* Shard::runtime_of(uint32_t instance) const {
  return instance < instances_.size() ? instances_[instance].runtime.get() : nullptr;
}

RuntimeContext* Shard::context_of(uint32_t instance) const {
  return instance < instances_.size() ? instances_[instance].context.get() : nullptr;
}

const std::string& Shard::instance_id(uint32_t instance) const {
  static const std::string kEmpty;
  return instance < specs_.size() ? specs_[instance].id : kEmpty;
}

uint64_t Shard::MergeLatency(obs::Histogram* into) const {
  uint64_t merged = 0;
  for (const Instance& inst : instances_) {
    if (inst.latency == nullptr) {
      continue;
    }
    if (into->Merge(*inst.latency)) {
      merged += inst.latency->count();
    }
  }
  return merged;
}

}  // namespace turnstile
