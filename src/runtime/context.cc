#include "src/runtime/context.h"

namespace turnstile {

RuntimeContext& RuntimeContext::Default() {
  static RuntimeContext* instance = new RuntimeContext();  // never destroyed
  return *instance;
}

RuntimeContext::RuntimeContext() {
  is_default_ = true;
  atoms_ = &AtomTable::Global();
  metrics_ = &obs::Metrics::Global();
  trace_recorder_ = &obs::TraceRecorder::Global();
  profiler_ = &obs::Profiler::Global();
  audit_ = &obs::AuditLedger::Global();
}

RuntimeContext::RuntimeContext(Isolated) {
  atoms_ = &AtomTable::Global();
  owned_metrics_ = std::make_unique<obs::Metrics>();
  owned_trace_recorder_ = std::make_unique<obs::TraceRecorder>();
  owned_profiler_ =
      std::make_unique<obs::Profiler>(owned_trace_recorder_.get(), owned_metrics_.get());
  owned_audit_ =
      std::make_unique<obs::AuditLedger>(owned_trace_recorder_.get(), owned_metrics_.get());
  metrics_ = owned_metrics_.get();
  trace_recorder_ = owned_trace_recorder_.get();
  profiler_ = owned_profiler_.get();
  audit_ = owned_audit_.get();
}

std::unique_ptr<RuntimeContext> RuntimeContext::CreateIsolated() {
  return std::unique_ptr<RuntimeContext>(new RuntimeContext(Isolated{}));
}

void RuntimeContext::ApplyEnvObsConfig() {
  // Environment variables configure the process-default obs stack only; an
  // isolated context never aliases it, so there is nothing to apply.
  if (is_default_) {
    obs::ApplyEnvObsConfig();
  }
}

}  // namespace turnstile
