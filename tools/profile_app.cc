// Corpus profiling driver: runs one corpus app under the span profiler and
// exports its profile.
//
//   profile_app <app> [--messages=N] [--version=original|selective|exhaustive|roundtrip]
//               [--tier=bytecode|bytecode-lowered|treewalk] [--disasm]
//               [--profile=PATH] [--trace-export=PATH] [--json[=PATH]]
//
//   --disasm             print the bytecode listing of the program and every
//                        function (the fused flavor, or the call-lowered one
//                        under --tier=bytecode-lowered) and exit without
//                        driving messages.
//
//   --trace-export=PATH  Chrome trace-event JSON (open in Perfetto or
//                        chrome://tracing); carries the turnstileProfile
//                        summary as an extra top-level key.
//   --profile=PATH       collapsed-stack text (pipe into flamegraph.pl or
//                        load in speedscope).
//   --json[=PATH]        metrics-registry snapshot (the shared bench flag) —
//                        includes the per-node flow.node_turn_seconds
//                        histograms with p50/p90/p99 recorded by this run.
//
// Without an app name, lists the corpus. The summary printed to stdout shows
// the monitor/app split, the hottest functions/lines, and per-node latency
// percentiles.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/interp/interp.h"
#include "src/lang/ast.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/support/rng.h"
#include "src/vm/bytecode.h"
#include "src/vm/compiler.h"
#include "tools/cli_args.h"

namespace turnstile {
namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "profile_app: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  return true;
}

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: profile_app <app> [--messages=N] [--version=V] [--tier=T] [--disasm]\n"
               "                   [--profile=PATH] [--trace-export=PATH] [--json[=PATH]]\n"
               "corpus apps:\n");
  for (const CorpusApp& app : Corpus()) {
    std::fprintf(out, "  %s\n", app.name.c_str());
  }
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

int Main(int argc, char** argv) {
  std::string app_name;
  int messages = 200;
  AppVersion version = AppVersion::kSelective;
  std::optional<ExecTier> tier;
  bool disasm = false;
  std::string profile_path;
  std::string trace_export_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    cli::FlagParse parse;
    if ((parse = cli::ParseIntFlag(arg, "--messages", "profile_app", 1000000, &messages)) !=
        cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if (arg.rfind("--version=", 0) == 0) {
      std::string v = arg.substr(10);
      if (v == "original") {
        version = AppVersion::kOriginal;
      } else if (v == "selective") {
        version = AppVersion::kSelective;
      } else if (v == "exhaustive") {
        version = AppVersion::kExhaustive;
      } else if (v == "roundtrip") {
        version = AppVersion::kRoundTrip;
      } else {
        std::fprintf(stderr, "profile_app: unknown version '%s'\n", v.c_str());
        return 2;
      }
    } else if ((parse = cli::ParseTierFlag(arg, "profile_app", &tier)) !=
               cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if (arg == "--disasm") {
      disasm = true;
    } else if (cli::ParseStringFlag(arg, "--profile", "profile_app", nullptr, &profile_path) ==
               cli::FlagParse::kOk) {
    } else if (cli::ParseStringFlag(arg, "--trace-export", "profile_app", nullptr,
                                    &trace_export_path) == cli::FlagParse::kOk) {
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      // handled by MaybeWriteMetricsSnapshot after the run
    } else if (!arg.empty() && arg[0] != '-') {
      if (!app_name.empty()) {
        std::fprintf(stderr, "profile_app: unexpected extra argument '%s' (app is '%s')\n",
                     arg.c_str(), app_name.c_str());
        return Usage();
      }
      app_name = arg;
    } else {
      std::fprintf(stderr, "profile_app: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (app_name.empty()) {
    std::fprintf(stderr, "profile_app: missing app name\n");
    return Usage();
  }
  const CorpusApp* app = FindCorpusApp(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "profile_app: unknown corpus app '%s'\n", app_name.c_str());
    return Usage();
  }

  auto runtime = AppRuntime::Create(*app, version, tier);
  if (!runtime.ok() && version == AppVersion::kSelective) {
    // Apps without detected paths carry no usable policy; profile the
    // original program instead (all-app split by construction).
    std::fprintf(stderr, "profile_app: selective setup failed (%s); using original version\n",
                 runtime.status().ToString().c_str());
    version = AppVersion::kOriginal;
    runtime = AppRuntime::Create(*app, version, tier);
  }
  if (!runtime.ok()) {
    std::fprintf(stderr, "profile_app: %s setup failed: %s\n", app->name.c_str(),
                 runtime.status().ToString().c_str());
    return 1;
  }

  if (disasm) {
    // Compile-and-print, no execution: show exactly the chunks this runtime's
    // tier would run (program top level plus every function body).
    bool lowered = (*runtime)->interp().exec_tier() == ExecTier::kBytecodeLowered;
    const NodePtr& root = (*runtime)->program_root();
    vm::ChunkPtr program_chunk =
        lowered ? vm::GetOrCompileProgram(root) : vm::GetOrCompileProgramFused(root);
    std::printf("=== %s: program (%s) ===\n%s", app->name.c_str(),
                lowered ? "call-lowered" : "fused", vm::DisassembleChunk(*program_chunk).c_str());
    ForEachNode(root, [&](const NodePtr& node) {
      if (!node->IsFunctionLike()) {
        return;
      }
      const NodePtr& body = node->children[1];
      vm::ChunkPtr chunk = lowered ? vm::GetOrCompileFunctionBody(body)
                                   : vm::GetOrCompileFunctionBodyFused(body);
      std::printf("\n=== function %s (line %d) ===\n%s",
                  node->str.empty() ? "<anonymous>" : node->str.c_str(), node->loc.line,
                  vm::DisassembleChunk(*chunk).c_str());
    });
    return 0;
  }

  Rng rng(0xBE11C0DE);
  for (int seq = 0; seq < 20; ++seq) {  // warm-up outside the profiled window
    Status status = (*runtime)->DriveMessage(&rng, seq);
    if (!status.ok()) {
      std::fprintf(stderr, "profile_app: warm-up failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  obs::Profiler& profiler = obs::Profiler::Global();
  profiler.Enable();
  for (int seq = 0; seq < messages; ++seq) {
    Status status = (*runtime)->DriveMessage(&rng, 100 + seq);
    if (!status.ok()) {
      std::fprintf(stderr, "profile_app: message %d failed: %s\n", seq,
                   status.ToString().c_str());
      return 1;
    }
  }

  // --- exports ---------------------------------------------------------------
  if (!trace_export_path.empty()) {
    if (!WriteFile(trace_export_path, profiler.ChromeTraceJson().Dump() + "\n")) {
      return 1;
    }
    std::printf("Chrome trace written to %s (open in https://ui.perfetto.dev)\n",
                trace_export_path.c_str());
  }
  if (!profile_path.empty()) {
    if (!WriteFile(profile_path, profiler.CollapsedStacks())) {
      return 1;
    }
    std::printf("collapsed stacks written to %s (flamegraph.pl %s > flame.svg)\n",
                profile_path.c_str(), profile_path.c_str());
  }

  // --- summary ---------------------------------------------------------------
  obs::OverheadSplit split = profiler.split();
  std::printf("\n%s (%s, %d messages): %llu spans (%llu dropped)\n", app->name.c_str(),
              version == AppVersion::kOriginal     ? "original"
              : version == AppVersion::kSelective  ? "selective"
              : version == AppVersion::kExhaustive ? "exhaustive"
                                                   : "roundtrip",
              messages, static_cast<unsigned long long>(profiler.spans_recorded()),
              static_cast<unsigned long long>(profiler.spans_dropped()));
  std::printf("split: app %.3f ms, monitor %.3f ms -> overhead fraction %.4f\n",
              split.app_s * 1e3, split.monitor_s * 1e3, split.fraction());

  std::printf("\ntop functions by self time (app/monitor):\n");
  std::vector<obs::FunctionProfile> functions = profiler.FunctionsSnapshot();
  size_t shown = 0;
  for (const obs::FunctionProfile& fn : functions) {
    if (shown++ >= 10) {
      break;
    }
    std::printf("  %-32s %-7s line %-4d calls %-8llu self %8.3f ms  total %8.3f ms\n",
                fn.name.c_str(), fn.monitor ? "monitor" : "app", fn.line,
                static_cast<unsigned long long>(fn.calls), fn.self_s * 1e3, fn.total_s * 1e3);
  }

  std::printf("\ntop source lines by self time (VM wall %.3f ms):\n",
              profiler.vm_seconds() * 1e3);
  std::vector<obs::LineProfile> lines = profiler.LinesSnapshot();
  std::sort(lines.begin(), lines.end(),
            [](const obs::LineProfile& a, const obs::LineProfile& b) {
              return a.self_s > b.self_s;
            });
  shown = 0;
  for (const obs::LineProfile& line : lines) {
    if (shown++ >= 10) {
      break;
    }
    std::printf("  line %-5d self %8.3f ms  (%llu ticks)\n", line.line, line.self_s * 1e3,
                static_cast<unsigned long long>(line.ticks));
  }

  std::printf("\nper-node turn latency (p50/p90/p99 us):\n");
  const Json snapshot = obs::Metrics::Global().ToJson();
  for (const auto& [name, entry] : snapshot["histograms"].object_items()) {
    if (name.rfind("flow.node_turn_seconds{", 0) != 0) {
      continue;
    }
    std::printf("  %-40s %8.2f %8.2f %8.2f  (%llu turns)\n", name.c_str(),
                entry.GetNumber("p50") * 1e6, entry.GetNumber("p90") * 1e6,
                entry.GetNumber("p99") * 1e6,
                static_cast<unsigned long long>(entry.GetNumber("count")));
  }
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main(argc, argv);
  turnstile::obs::MaybeWriteMetricsSnapshot(argc, argv);
  return rc;
}
