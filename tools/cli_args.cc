#include "tools/cli_args.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace turnstile {
namespace cli {

namespace {
// Returns the value part of "<flag>=V", or nullptr when arg is for a
// different flag. The '=' is required: a bare "--messages" is not a match
// (the caller's unknown-argument branch reports it).
const char* FlagValue(const std::string& arg, const char* flag) {
  size_t flag_len = std::strlen(flag);
  if (arg.compare(0, flag_len, flag) != 0 || arg.size() < flag_len + 1 ||
      arg[flag_len] != '=') {
    return nullptr;
  }
  return arg.c_str() + flag_len + 1;
}
}  // namespace

FlagParse ParseIntFlag(const std::string& arg, const char* flag, const char* tool, long max,
                       int* out) {
  const char* value = FlagValue(arg, flag);
  if (value == nullptr) {
    return FlagParse::kNoMatch;
  }
  // Strict parse: "--messages=12abc" must be rejected, not read as 12.
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0 || parsed > max) {
    std::fprintf(stderr, "%s: bad %s value '%s'\n", tool, flag, arg.c_str());
    return FlagParse::kBad;
  }
  *out = static_cast<int>(parsed);
  return FlagParse::kOk;
}

FlagParse ParseStringFlag(const std::string& arg, const char* flag, const char* tool,
                          const char* what, std::string* out) {
  const char* value = FlagValue(arg, flag);
  if (value == nullptr) {
    return FlagParse::kNoMatch;
  }
  if (what != nullptr && *value == '\0') {
    std::fprintf(stderr, "%s: %s needs a %s\n", tool, flag, what);
    return FlagParse::kBad;
  }
  *out = value;
  return FlagParse::kOk;
}

FlagParse ParseTierFlag(const std::string& arg, const char* tool, std::optional<ExecTier>* out) {
  const char* value = FlagValue(arg, "--tier");
  if (value == nullptr) {
    return FlagParse::kNoMatch;
  }
  *out = ExecTierFromName(value);
  if (!out->has_value()) {
    std::fprintf(stderr,
                 "%s: unknown tier '%s' (accepted: bytecode, "
                 "bytecode-lowered, treewalk)\n",
                 tool, value);
    return FlagParse::kBad;
  }
  return FlagParse::kOk;
}

}  // namespace cli
}  // namespace turnstile
