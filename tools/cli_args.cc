#include "tools/cli_args.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace turnstile {
namespace cli {

namespace {

// flag -> occurrences seen so far (CLI parsing is single-threaded; tools
// parse argv once from main).
std::map<std::string, int>& RepeatCounts() {
  static std::map<std::string, int>* counts = new std::map<std::string, int>();
  return *counts;
}

}  // namespace

void NoteFlagMatchForRepeatWarning(const char* tool, const char* flag) {
  int seen = ++RepeatCounts()[flag];
  if (seen == 2) {
    std::fprintf(stderr, "%s: %s repeated; last value wins\n", tool, flag);
  }
}

void ResetRepeatedFlagWarningsForTest() { RepeatCounts().clear(); }

namespace {
// Returns the value part of "<flag>=V", or nullptr when arg is for a
// different flag. The '=' is required: a bare "--messages" is not a match
// (the caller's unknown-argument branch reports it).
const char* FlagValue(const std::string& arg, const char* flag) {
  size_t flag_len = std::strlen(flag);
  if (arg.compare(0, flag_len, flag) != 0 || arg.size() < flag_len + 1 ||
      arg[flag_len] != '=') {
    return nullptr;
  }
  return arg.c_str() + flag_len + 1;
}
}  // namespace

FlagParse ParseIntFlag(const std::string& arg, const char* flag, const char* tool, long max,
                       int* out) {
  const char* value = FlagValue(arg, flag);
  if (value == nullptr) {
    return FlagParse::kNoMatch;
  }
  NoteFlagMatchForRepeatWarning(tool, flag);
  // Strict parse: "--messages=12abc" must be rejected, not read as 12.
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0 || parsed > max) {
    std::fprintf(stderr, "%s: bad %s value '%s'\n", tool, flag, arg.c_str());
    return FlagParse::kBad;
  }
  *out = static_cast<int>(parsed);
  return FlagParse::kOk;
}

FlagParse ParseStringFlag(const std::string& arg, const char* flag, const char* tool,
                          const char* what, std::string* out) {
  const char* value = FlagValue(arg, flag);
  if (value == nullptr) {
    return FlagParse::kNoMatch;
  }
  NoteFlagMatchForRepeatWarning(tool, flag);
  if (what != nullptr && *value == '\0') {
    std::fprintf(stderr, "%s: %s needs a %s\n", tool, flag, what);
    return FlagParse::kBad;
  }
  *out = value;
  return FlagParse::kOk;
}

FlagParse ParseTierFlag(const std::string& arg, const char* tool, std::optional<ExecTier>* out) {
  const char* value = FlagValue(arg, "--tier");
  if (value == nullptr) {
    return FlagParse::kNoMatch;
  }
  NoteFlagMatchForRepeatWarning(tool, "--tier");
  *out = ExecTierFromName(value);
  if (!out->has_value()) {
    std::fprintf(stderr,
                 "%s: unknown tier '%s' (accepted: bytecode, "
                 "bytecode-lowered, treewalk)\n",
                 tool, value);
    return FlagParse::kBad;
  }
  return FlagParse::kOk;
}

}  // namespace cli
}  // namespace turnstile
