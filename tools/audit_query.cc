// Privacy-accounting queries over the flow-provenance audit ledger (ISSUE 6).
//
//   audit_query [<app>] [--messages=N] [--tier=bytecode|bytecode-lowered|treewalk]
//               [--source=LABEL] [--sink=NAME] [--out=PATH] [--check-fig10]
//
// Runs corpus apps (all 61 by default) under the selectively-instrumented
// version with the audit ledger enabled, then answers accounting questions
// from the recorded events:
//
//   default          per-app source→sink *exposure matrix*: for every
//                    sink-write event, which source labels were on the data
//                    when it crossed the sink — the "who saw what" table.
//   --source/--sink  lineage query: why did data labelled LABEL reach sink
//                    NAME — prints the attach event that introduced the
//                    label, the merge events that propagated it, and the
//                    flow check / sink write where it arrived.
//   --out=PATH       writes the matrix (plus per-app accounting totals and
//                    the consistency verdict) as JSON.
//   --check-fig10    cross-checks ledger-derived violations against the
//                    corpus ground truth that bench_fig10_detection uses:
//                    (a) per app, the ledger's denied flow-check events must
//                    agree 1:1 with the tracker's recorded violations;
//                    (b) any app with runtime violations must have
//                    ground_truth_paths > 0. Exits non-zero on disagreement.
//   --fleet-lineage  cross-APP lineage: wires a terminal-emitting corpus app
//                    into a second app on a different fleet shard, runs the
//                    pair with fleet trace propagation on, and prints the
//                    assembled source -> wire -> sink chain (per-hop audit
//                    events stitched by fleet trace id). Exits non-zero when
//                    no message crossed the wire.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/obs/audit.h"
#include "src/runtime/fleet.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "tools/cli_args.h"

namespace turnstile {
namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: audit_query [<app>] [--messages=N] [--tier=bytecode|bytecode-lowered|treewalk]\n"
               "                   [--source=LABEL] [--sink=NAME] [--out=PATH]\n"
               "                   [--check-fig10] [--fleet-lineage]\n");
}

// Everything the ledger tells us about one app's run.
struct AppAudit {
  std::string app;
  bool ran = false;
  std::string skip_reason;
  int ground_truth_paths = 0;
  uint64_t events = 0;
  uint64_t dropped = 0;
  uint64_t flows_allowed = 0;
  uint64_t flows_denied = 0;
  size_t tracker_violations = 0;
  // source label -> sink subject -> sink-write count (the exposure matrix).
  std::map<std::string, std::map<std::string, uint64_t>> exposure;
  std::vector<obs::AuditEvent> ledger;  // kept for lineage queries
};

AppAudit RunApp(const CorpusApp& app, int messages, std::optional<ExecTier> tier) {
  AppAudit out;
  out.app = app.name;
  out.ground_truth_paths = app.ground_truth_paths;

  obs::AuditLedger& ledger = obs::AuditLedger::Global();
  // Fresh enable per app: resets the sequence counter and (via the co-enabled
  // trace recorder) trace numbering, so runs are reproducible app by app.
  ledger.Disable();
  ledger.Enable(1u << 18);

  auto runtime = AppRuntime::Create(app, AppVersion::kSelective, tier);
  if (!runtime.ok()) {
    // Apps without detected paths carry no usable policy (profile_app makes
    // the same call); without a tracker there is no ledger to account.
    out.skip_reason = runtime.status().ToString();
    ledger.Disable();
    return out;
  }
  Rng rng(0xBE11C0DE);
  for (int seq = 0; seq < messages; ++seq) {
    Status status = (*runtime)->DriveMessage(&rng, seq);
    if (!status.ok()) {
      out.skip_reason = "message " + std::to_string(seq) + ": " + status.ToString();
      ledger.Disable();
      return out;
    }
  }
  out.ran = true;
  out.events = ledger.recorded();
  out.dropped = ledger.dropped();
  out.tracker_violations = (*runtime)->tracker()->violations().size();
  out.ledger = ledger.Snapshot();

  const Policy& policy = (*runtime)->tracker()->policy();
  const LabelSetPool& pool = policy.pool();
  const LabelSpace& space = policy.space();
  for (const obs::AuditEvent& event : out.ledger) {
    if (event.kind == obs::AuditKind::kFlowCheck) {
      ++(event.allowed ? out.flows_allowed : out.flows_denied);
    }
    if (event.kind == obs::AuditKind::kSinkWrite && event.data != kEmptyLabelSetRef) {
      for (LabelId id : pool.Ids(event.data)) {
        ++out.exposure[space.NameOf(id)][event.subject];
      }
    }
  }
  ledger.Disable();
  return out;
}

// Lineage: the event chain that carried `source_label` into `sink`. The
// snapshot carries rendered label names, so the chain is reconstructed from
// the event strings alone: an event touches the label iff its rendered
// `labels` field names it.
int ExplainLineage(const AppAudit& audit, const std::string& source_label,
                   const std::string& sink) {
  auto mentions = [&source_label](const obs::AuditEvent& event) {
    return event.labels.find(source_label) != std::string::npos;
  };
  std::printf("\n%s: lineage of '%s' -> '%s'\n", audit.app.c_str(), source_label.c_str(),
              sink.c_str());
  bool introduced = false;
  bool arrived = false;
  for (const obs::AuditEvent& event : audit.ledger) {
    switch (event.kind) {
      case obs::AuditKind::kLabelAttach:
      case obs::AuditKind::kInvokeLabeller:
      case obs::AuditKind::kDeclassify:
        if (mentions(event)) {
          if (!introduced) {
            introduced = true;
            std::printf("  introduced  %s\n", event.Canonical().c_str());
          }
        }
        break;
      case obs::AuditKind::kMerge:
        if (mentions(event)) {
          std::printf("  propagated  %s\n", event.Canonical().c_str());
        }
        break;
      case obs::AuditKind::kFlowCheck:
        if (event.subject == sink && mentions(event)) {
          std::printf("  checked     %s\n", event.Canonical().c_str());
        }
        break;
      case obs::AuditKind::kSinkWrite:
        if (event.subject == sink && mentions(event)) {
          arrived = true;
          std::printf("  sink write  %s\n", event.Canonical().c_str());
        }
        break;
    }
  }
  if (!introduced) {
    std::printf("  (no attach event introduced '%s')\n", source_label.c_str());
  }
  if (!arrived) {
    std::printf("  (no sink write carried '%s' into '%s')\n", source_label.c_str(),
                sink.c_str());
    return 1;
  }
  return 0;
}

// Cross-app lineage over the fleet (ISSUE 10): wire A (a terminal-emitting
// app, pinned to shard 0) into B (pinned to shard 1), run with fleet trace
// propagation enabled, and print the stitched source -> wire -> sink chain —
// each hop's audit events selected by the local trace id its fleet binding
// names. Returns 0 iff at least one fleet trace crossed the wire.
int FleetLineage(int messages, std::optional<ExecTier> tier) {
  // Probe for a source worth wiring: its drive must produce terminal sends
  // (flow outputs) — otherwise nothing ever crosses.
  const CorpusApp* source = nullptr;
  for (const CorpusApp& app : Corpus()) {
    auto context = RuntimeContext::CreateIsolated();
    auto runtime = AppRuntime::Create(app, AppVersion::kSelective, tier, context.get());
    if (!runtime.ok()) {
      continue;
    }
    int terminal = 0;
    (*runtime)->engine().set_terminal_sink(
        [&terminal](const std::string&, const Value&, uint64_t) { ++terminal; });
    Rng rng(0xBE11C0DE);
    bool ok = true;
    for (int seq = 0; seq < messages && ok; ++seq) {
      ok = (*runtime)->DriveMessage(&rng, seq).ok();
    }
    if (ok && terminal > 0) {
      source = &app;
      break;
    }
  }
  if (source == nullptr) {
    std::fprintf(stderr, "audit_query: no corpus app emits terminal sends\n");
    return 1;
  }
  const CorpusApp* destination = nullptr;
  for (const CorpusApp& app : Corpus()) {
    if (&app != source && !app.entry_kind.empty()) {
      destination = &app;
      break;
    }
  }
  if (destination == nullptr) {
    std::fprintf(stderr, "audit_query: no destination app with an entry point\n");
    return 1;
  }

  FleetRuntime::Options options;
  options.shards = 2;
  options.version = AppVersion::kSelective;
  options.tier = tier;
  options.audit_capacity = 1u << 18;
  options.trace_capacity = 1u << 15;
  FleetRuntime fleet(options);
  const std::string src_id = fleet.AddApp(*source, /*shard=*/0);
  const std::string dst_id = fleet.AddApp(*destination, /*shard=*/1);
  Status status = fleet.Wire(src_id, dst_id);
  if (status.ok()) {
    status = fleet.Start();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "audit_query: fleet setup: %s\n", status.ToString().c_str());
    return 1;
  }
  for (int seq = 0; seq < messages; ++seq) {
    fleet.Post(src_id, seq);
  }
  fleet.Drain();

  obs::FleetTraceAssembler assembled = fleet.AssembleTrace();
  int rc = 1;
  for (uint64_t id : assembled.FleetTraceIds()) {
    std::vector<obs::FleetTraceAssembler::Hop> hops = assembled.HopsOf(id);
    if (hops.size() < 2) {
      continue;  // never crossed the wire
    }
    std::printf("fleet trace %llu: %s -> %s (%zu hops)\n",
                static_cast<unsigned long long>(id), src_id.c_str(), dst_id.c_str(),
                hops.size());
    for (const obs::FleetTraceAssembler::Hop& hop : hops) {
      if (hop.hop > 0) {
        std::printf("  [wire hop %u] serialized Json crossing -> %s (parent span %llu)\n",
                    hop.hop, hop.lane.c_str(),
                    static_cast<unsigned long long>(hop.parent_span));
      }
      std::printf("  [hop %u] %s @%s (local trace %llu)\n", hop.hop, hop.source.c_str(),
                  hop.lane.c_str(), static_cast<unsigned long long>(hop.local_trace_id));
      RuntimeContext* context = fleet.context_of(hop.source);
      if (context == nullptr) {
        continue;
      }
      int printed = 0;
      for (const obs::AuditEvent& event : context->audit().Snapshot()) {
        if (event.trace_id != hop.local_trace_id) {
          continue;
        }
        if (++printed > 8) {
          std::printf("    ...\n");
          break;
        }
        std::printf("    %s\n", event.Canonical().c_str());
      }
    }
    rc = 0;
    break;
  }
  fleet.Stop();
  if (rc != 0) {
    std::fprintf(stderr, "audit_query: no fleet trace crossed the %s -> %s wire\n",
                 src_id.c_str(), dst_id.c_str());
  }
  return rc;
}

int Main(int argc, char** argv) {
  std::string app_filter;
  std::string source_label;
  std::string sink_name;
  std::string out_path;
  int messages = 5;
  bool check_fig10 = false;
  bool fleet_lineage = false;
  std::optional<ExecTier> tier;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    cli::FlagParse parse;
    if ((parse = cli::ParseIntFlag(arg, "--messages", "audit_query", 100000, &messages)) !=
        cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseTierFlag(arg, "audit_query", &tier)) !=
               cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseStringFlag(arg, "--source", "audit_query", "label name",
                                             &source_label)) != cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseStringFlag(arg, "--sink", "audit_query", "sink name",
                                             &sink_name)) != cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseStringFlag(arg, "--out", "audit_query", "path", &out_path)) !=
               cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if (arg == "--check-fig10") {
      check_fig10 = true;
    } else if (arg == "--fleet-lineage") {
      fleet_lineage = true;
    } else if (!arg.empty() && arg[0] != '-') {
      if (!app_filter.empty()) {
        std::fprintf(stderr, "audit_query: unexpected extra argument '%s' (app is '%s')\n",
                     arg.c_str(), app_filter.c_str());
        PrintUsage(stderr);
        return 2;
      }
      app_filter = arg;
    } else {
      std::fprintf(stderr, "audit_query: unknown argument '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (source_label.empty() != sink_name.empty()) {
    std::fprintf(stderr, "audit_query: --source and --sink must be used together\n");
    return 2;
  }
  if (!app_filter.empty() && FindCorpusApp(app_filter) == nullptr) {
    std::fprintf(stderr, "audit_query: unknown corpus app '%s'\n", app_filter.c_str());
    return 2;
  }
  if (fleet_lineage) {
    return FleetLineage(messages, tier);
  }

  std::vector<AppAudit> audits;
  for (const CorpusApp& app : Corpus()) {
    if (!app_filter.empty() && app.name != app_filter) {
      continue;
    }
    audits.push_back(RunApp(app, messages, tier));
  }

  // --- lineage query ---------------------------------------------------------
  if (!source_label.empty()) {
    int rc = 1;
    for (const AppAudit& audit : audits) {
      if (!audit.ran) {
        continue;
      }
      if (ExplainLineage(audit, source_label, sink_name) == 0) {
        rc = 0;
      }
    }
    return rc;
  }

  // --- exposure matrix + accounting ------------------------------------------
  uint64_t total_events = 0;
  uint64_t total_allowed = 0;
  uint64_t total_denied = 0;
  int apps_ran = 0;
  Json apps_json = Json::Object();
  std::vector<std::string> mismatches;
  for (const AppAudit& audit : audits) {
    Json entry = Json::Object();
    entry.Set("ground_truth_paths", Json(audit.ground_truth_paths));
    if (!audit.ran) {
      entry.Set("skipped", Json(audit.skip_reason));
      apps_json.Set(audit.app, std::move(entry));
      continue;
    }
    ++apps_ran;
    total_events += audit.events;
    total_allowed += audit.flows_allowed;
    total_denied += audit.flows_denied;
    entry.Set("events", Json(audit.events));
    entry.Set("dropped", Json(audit.dropped));
    entry.Set("flows_allowed", Json(audit.flows_allowed));
    entry.Set("flows_denied", Json(audit.flows_denied));
    entry.Set("tracker_violations", Json(audit.tracker_violations));
    Json exposure = Json::Object();
    for (const auto& [source, sinks] : audit.exposure) {
      Json row = Json::Object();
      for (const auto& [sink, count] : sinks) {
        row.Set(sink, Json(count));
      }
      exposure.Set(source, std::move(row));
    }
    entry.Set("exposure", std::move(exposure));
    apps_json.Set(audit.app, std::move(entry));

    // Consistency: the ledger's denied flow checks ARE the tracker's
    // violations — every RecordViolation site ledgered a deny first.
    if (audit.flows_denied != audit.tracker_violations) {
      mismatches.push_back(audit.app + ": ledger denied " +
                           std::to_string(audit.flows_denied) + " flows but tracker holds " +
                           std::to_string(audit.tracker_violations) + " violations");
    }
    if (audit.flows_denied > 0 && audit.ground_truth_paths == 0) {
      mismatches.push_back(audit.app + ": ledger-derived violations on an app whose ground "
                           "truth has no source->sink paths");
    }
  }

  // Human-readable matrix.
  for (const AppAudit& audit : audits) {
    if (!audit.ran || audit.exposure.empty()) {
      continue;
    }
    std::printf("%s (gt_paths=%d, events=%llu, allow=%llu, deny=%llu):\n", audit.app.c_str(),
                audit.ground_truth_paths, static_cast<unsigned long long>(audit.events),
                static_cast<unsigned long long>(audit.flows_allowed),
                static_cast<unsigned long long>(audit.flows_denied));
    for (const auto& [source, sinks] : audit.exposure) {
      for (const auto& [sink, count] : sinks) {
        std::printf("  %-24s -> %-28s x%llu\n", source.c_str(), sink.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
  }
  std::printf("\n%d/%zu apps ran: %llu ledger events, %llu flows allowed, %llu denied\n",
              apps_ran, audits.size(), static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_allowed),
              static_cast<unsigned long long>(total_denied));

  bool consistent = mismatches.empty();
  if (check_fig10) {
    for (const std::string& mismatch : mismatches) {
      std::fprintf(stderr, "audit_query: MISMATCH %s\n", mismatch.c_str());
    }
    std::printf("fig10 cross-check: %s\n", consistent ? "consistent" : "MISMATCH");
  }

  if (!out_path.empty()) {
    Json root = Json::Object();
    root.Set("apps", std::move(apps_json));
    Json totals = Json::Object();
    totals.Set("apps_ran", Json(apps_ran));
    totals.Set("events", Json(total_events));
    totals.Set("flows_allowed", Json(total_allowed));
    totals.Set("flows_denied", Json(total_denied));
    root.Set("totals", std::move(totals));
    Json consistency = Json::Object();
    consistency.Set("ok", Json(consistent));
    Json mismatch_json = Json::Array();
    for (const std::string& mismatch : mismatches) {
      mismatch_json.Append(Json(mismatch));
    }
    consistency.Set("mismatches", std::move(mismatch_json));
    root.Set("consistency", std::move(consistency));
    std::string text = root.Dump(/*pretty=*/true) + "\n";
    std::FILE* file = std::fopen(out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "audit_query: cannot open '%s' for writing\n", out_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);
    std::printf("matrix written to %s\n", out_path.c_str());
  }

  return check_fig10 && !consistent ? 1 : 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) { return turnstile::Main(argc, argv); }
