// Shared strict argv parsing for the CLI tools (profile_app, audit_query,
// bench mains). Every tool historically hand-rolled the same whole-string
// strtol contract and error wording; this header is that contract, factored
// once. The wording is load-bearing: the CLI contract tests in
// tools/CMakeLists.txt grep stderr for these exact messages.
#ifndef TURNSTILE_TOOLS_CLI_ARGS_H_
#define TURNSTILE_TOOLS_CLI_ARGS_H_

#include <optional>
#include <string>

#include "src/interp/interp.h"

namespace turnstile {
namespace cli {

// Three-way result of matching one argv token against one flag: the token is
// for a different flag entirely (kNoMatch — keep walking the else-if chain),
// parsed fine (kOk), or matched the flag but failed validation (kBad — the
// parser already printed the diagnostic; the caller exits 2).
enum class FlagParse { kNoMatch, kOk, kBad };

// Strict positive-integer flag: matches "<flag>=N" (e.g. flag = "--messages").
// The value must be a whole-string decimal integer in [1, max] — an empty
// value, trailing garbage ("--messages=12abc"), a non-positive value, or one
// above `max` is rejected with
//   "<tool>: bad <flag> value '<full-arg>'"
// on stderr (the historical wording, full token included).
FlagParse ParseIntFlag(const std::string& arg, const char* flag, const char* tool, long max,
                       int* out);

// String flag: matches "<flag>=V". When `what` is non-null an empty value is
// rejected with "<tool>: <flag> needs a <what>" on stderr; when null, empty
// values are accepted verbatim.
FlagParse ParseStringFlag(const std::string& arg, const char* flag, const char* tool,
                          const char* what, std::string* out);

// Execution-tier flag: matches "--tier=T" against ExecTierFromName, rejecting
// unknown names with
//   "<tool>: unknown tier '<T>' (accepted: bytecode, bytecode-lowered, treewalk)"
// on stderr.
FlagParse ParseTierFlag(const std::string& arg, const char* tool, std::optional<ExecTier>* out);

// Repeated-flag detection. Every Parse*Flag above notes each successful flag
// match; a flag seen a second time in one process warns once on stderr —
//   "<tool>: <flag> repeated; last value wins"
// — making the historical (and kept) last-wins behavior visible instead of
// silent. Subsequent repeats of the same flag stay quiet.
void NoteFlagMatchForRepeatWarning(const char* tool, const char* flag);
// Clears the per-process repeat bookkeeping (tests parse many argvs).
void ResetRepeatedFlagWarningsForTest();

}  // namespace cli
}  // namespace turnstile

#endif  // TURNSTILE_TOOLS_CLI_ARGS_H_
