# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_access_control "/root/repo/build/examples/smart_access_control")
set_tests_properties(example_smart_access_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nvr_case_study "/root/repo/build/examples/nvr_case_study")
set_tests_properties(example_nvr_case_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_app "/root/repo/build/examples/analyze_app")
set_tests_properties(example_analyze_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_corpus "/root/repo/build/examples/analyze_app" "--corpus" "nlp.js")
set_tests_properties(example_analyze_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
