# Empty compiler generated dependencies file for analyze_app.
# This may be replaced when dependencies are built.
