file(REMOVE_RECURSE
  "CMakeFiles/analyze_app.dir/analyze_app.cpp.o"
  "CMakeFiles/analyze_app.dir/analyze_app.cpp.o.d"
  "analyze_app"
  "analyze_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
