# Empty compiler generated dependencies file for nvr_case_study.
# This may be replaced when dependencies are built.
