file(REMOVE_RECURSE
  "CMakeFiles/nvr_case_study.dir/nvr_case_study.cpp.o"
  "CMakeFiles/nvr_case_study.dir/nvr_case_study.cpp.o.d"
  "nvr_case_study"
  "nvr_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvr_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
