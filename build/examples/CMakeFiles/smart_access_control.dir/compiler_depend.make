# Empty compiler generated dependencies file for smart_access_control.
# This may be replaced when dependencies are built.
