file(REMOVE_RECURSE
  "CMakeFiles/smart_access_control.dir/smart_access_control.cpp.o"
  "CMakeFiles/smart_access_control.dir/smart_access_control.cpp.o.d"
  "smart_access_control"
  "smart_access_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_access_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
