file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_time.dir/bench_analysis_time.cc.o"
  "CMakeFiles/bench_analysis_time.dir/bench_analysis_time.cc.o.d"
  "bench_analysis_time"
  "bench_analysis_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
