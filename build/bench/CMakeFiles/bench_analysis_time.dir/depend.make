# Empty dependencies file for bench_analysis_time.
# This may be replaced when dependencies are built.
