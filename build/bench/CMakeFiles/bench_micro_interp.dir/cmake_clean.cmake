file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_interp.dir/bench_micro_interp.cc.o"
  "CMakeFiles/bench_micro_interp.dir/bench_micro_interp.cc.o.d"
  "bench_micro_interp"
  "bench_micro_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
