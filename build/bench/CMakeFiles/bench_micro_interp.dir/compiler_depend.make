# Empty compiler generated dependencies file for bench_micro_interp.
# This may be replaced when dependencies are built.
