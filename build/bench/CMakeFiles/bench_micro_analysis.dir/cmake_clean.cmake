file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_analysis.dir/bench_micro_analysis.cc.o"
  "CMakeFiles/bench_micro_analysis.dir/bench_micro_analysis.cc.o.d"
  "bench_micro_analysis"
  "bench_micro_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
