# Empty compiler generated dependencies file for bench_micro_analysis.
# This may be replaced when dependencies are built.
