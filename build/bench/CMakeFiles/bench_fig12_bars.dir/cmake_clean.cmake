file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_bars.dir/bench_fig12_bars.cc.o"
  "CMakeFiles/bench_fig12_bars.dir/bench_fig12_bars.cc.o.d"
  "bench_fig12_bars"
  "bench_fig12_bars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
