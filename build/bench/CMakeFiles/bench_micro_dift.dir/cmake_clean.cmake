file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dift.dir/bench_micro_dift.cc.o"
  "CMakeFiles/bench_micro_dift.dir/bench_micro_dift.cc.o.d"
  "bench_micro_dift"
  "bench_micro_dift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
