# Empty dependencies file for bench_micro_dift.
# This may be replaced when dependencies are built.
