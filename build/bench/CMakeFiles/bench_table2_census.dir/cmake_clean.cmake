file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_census.dir/bench_table2_census.cc.o"
  "CMakeFiles/bench_table2_census.dir/bench_table2_census.cc.o.d"
  "bench_table2_census"
  "bench_table2_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
