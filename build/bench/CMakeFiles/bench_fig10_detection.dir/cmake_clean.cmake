file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_detection.dir/bench_fig10_detection.cc.o"
  "CMakeFiles/bench_fig10_detection.dir/bench_fig10_detection.cc.o.d"
  "bench_fig10_detection"
  "bench_fig10_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
