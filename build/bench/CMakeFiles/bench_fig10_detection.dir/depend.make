# Empty dependencies file for bench_fig10_detection.
# This may be replaced when dependencies are built.
