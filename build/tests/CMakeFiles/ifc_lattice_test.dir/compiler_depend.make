# Empty compiler generated dependencies file for ifc_lattice_test.
# This may be replaced when dependencies are built.
