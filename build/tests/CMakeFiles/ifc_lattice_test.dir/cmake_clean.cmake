file(REMOVE_RECURSE
  "CMakeFiles/ifc_lattice_test.dir/ifc_lattice_test.cc.o"
  "CMakeFiles/ifc_lattice_test.dir/ifc_lattice_test.cc.o.d"
  "ifc_lattice_test"
  "ifc_lattice_test.pdb"
  "ifc_lattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifc_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
