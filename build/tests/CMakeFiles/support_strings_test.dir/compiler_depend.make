# Empty compiler generated dependencies file for support_strings_test.
# This may be replaced when dependencies are built.
