file(REMOVE_RECURSE
  "CMakeFiles/support_strings_test.dir/support_strings_test.cc.o"
  "CMakeFiles/support_strings_test.dir/support_strings_test.cc.o.d"
  "support_strings_test"
  "support_strings_test.pdb"
  "support_strings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_strings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
