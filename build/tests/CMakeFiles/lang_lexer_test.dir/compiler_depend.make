# Empty compiler generated dependencies file for lang_lexer_test.
# This may be replaced when dependencies are built.
