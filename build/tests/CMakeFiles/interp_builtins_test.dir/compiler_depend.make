# Empty compiler generated dependencies file for interp_builtins_test.
# This may be replaced when dependencies are built.
