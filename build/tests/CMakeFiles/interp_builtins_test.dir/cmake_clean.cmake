file(REMOVE_RECURSE
  "CMakeFiles/interp_builtins_test.dir/interp_builtins_test.cc.o"
  "CMakeFiles/interp_builtins_test.dir/interp_builtins_test.cc.o.d"
  "interp_builtins_test"
  "interp_builtins_test.pdb"
  "interp_builtins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
