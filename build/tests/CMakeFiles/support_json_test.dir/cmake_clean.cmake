file(REMOVE_RECURSE
  "CMakeFiles/support_json_test.dir/support_json_test.cc.o"
  "CMakeFiles/support_json_test.dir/support_json_test.cc.o.d"
  "support_json_test"
  "support_json_test.pdb"
  "support_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
