# Empty dependencies file for support_json_test.
# This may be replaced when dependencies are built.
