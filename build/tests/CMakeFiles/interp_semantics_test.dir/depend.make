# Empty dependencies file for interp_semantics_test.
# This may be replaced when dependencies are built.
