file(REMOVE_RECURSE
  "CMakeFiles/interp_semantics_test.dir/interp_semantics_test.cc.o"
  "CMakeFiles/interp_semantics_test.dir/interp_semantics_test.cc.o.d"
  "interp_semantics_test"
  "interp_semantics_test.pdb"
  "interp_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
