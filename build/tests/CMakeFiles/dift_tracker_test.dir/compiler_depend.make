# Empty compiler generated dependencies file for dift_tracker_test.
# This may be replaced when dependencies are built.
