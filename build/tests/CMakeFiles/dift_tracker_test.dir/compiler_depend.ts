# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dift_tracker_test.
