file(REMOVE_RECURSE
  "CMakeFiles/dift_tracker_test.dir/dift_tracker_test.cc.o"
  "CMakeFiles/dift_tracker_test.dir/dift_tracker_test.cc.o.d"
  "dift_tracker_test"
  "dift_tracker_test.pdb"
  "dift_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dift_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
