# Empty dependencies file for flow_engine_test.
# This may be replaced when dependencies are built.
