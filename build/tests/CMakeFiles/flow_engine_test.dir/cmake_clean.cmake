file(REMOVE_RECURSE
  "CMakeFiles/flow_engine_test.dir/flow_engine_test.cc.o"
  "CMakeFiles/flow_engine_test.dir/flow_engine_test.cc.o.d"
  "flow_engine_test"
  "flow_engine_test.pdb"
  "flow_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
