# Empty compiler generated dependencies file for analysis_analyzer_test.
# This may be replaced when dependencies are built.
