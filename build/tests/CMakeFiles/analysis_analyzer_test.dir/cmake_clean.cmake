file(REMOVE_RECURSE
  "CMakeFiles/analysis_analyzer_test.dir/analysis_analyzer_test.cc.o"
  "CMakeFiles/analysis_analyzer_test.dir/analysis_analyzer_test.cc.o.d"
  "analysis_analyzer_test"
  "analysis_analyzer_test.pdb"
  "analysis_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
