# Empty dependencies file for ifc_label_test.
# This may be replaced when dependencies are built.
