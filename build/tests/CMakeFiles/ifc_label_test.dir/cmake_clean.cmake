file(REMOVE_RECURSE
  "CMakeFiles/ifc_label_test.dir/ifc_label_test.cc.o"
  "CMakeFiles/ifc_label_test.dir/ifc_label_test.cc.o.d"
  "ifc_label_test"
  "ifc_label_test.pdb"
  "ifc_label_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifc_label_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
