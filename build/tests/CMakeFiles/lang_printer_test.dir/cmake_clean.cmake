file(REMOVE_RECURSE
  "CMakeFiles/lang_printer_test.dir/lang_printer_test.cc.o"
  "CMakeFiles/lang_printer_test.dir/lang_printer_test.cc.o.d"
  "lang_printer_test"
  "lang_printer_test.pdb"
  "lang_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
