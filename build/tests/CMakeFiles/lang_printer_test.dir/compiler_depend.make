# Empty compiler generated dependencies file for lang_printer_test.
# This may be replaced when dependencies are built.
