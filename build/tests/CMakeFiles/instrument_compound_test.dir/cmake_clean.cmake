file(REMOVE_RECURSE
  "CMakeFiles/instrument_compound_test.dir/instrument_compound_test.cc.o"
  "CMakeFiles/instrument_compound_test.dir/instrument_compound_test.cc.o.d"
  "instrument_compound_test"
  "instrument_compound_test.pdb"
  "instrument_compound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_compound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
