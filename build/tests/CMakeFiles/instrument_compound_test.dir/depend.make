# Empty dependencies file for instrument_compound_test.
# This may be replaced when dependencies are built.
