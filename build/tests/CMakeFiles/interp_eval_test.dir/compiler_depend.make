# Empty compiler generated dependencies file for interp_eval_test.
# This may be replaced when dependencies are built.
