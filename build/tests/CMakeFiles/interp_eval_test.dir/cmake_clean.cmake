file(REMOVE_RECURSE
  "CMakeFiles/interp_eval_test.dir/interp_eval_test.cc.o"
  "CMakeFiles/interp_eval_test.dir/interp_eval_test.cc.o.d"
  "interp_eval_test"
  "interp_eval_test.pdb"
  "interp_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
