file(REMOVE_RECURSE
  "CMakeFiles/baseline_querydl_test.dir/baseline_querydl_test.cc.o"
  "CMakeFiles/baseline_querydl_test.dir/baseline_querydl_test.cc.o.d"
  "baseline_querydl_test"
  "baseline_querydl_test.pdb"
  "baseline_querydl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_querydl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
