# Empty dependencies file for baseline_querydl_test.
# This may be replaced when dependencies are built.
