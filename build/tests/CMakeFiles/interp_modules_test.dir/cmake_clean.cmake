file(REMOVE_RECURSE
  "CMakeFiles/interp_modules_test.dir/interp_modules_test.cc.o"
  "CMakeFiles/interp_modules_test.dir/interp_modules_test.cc.o.d"
  "interp_modules_test"
  "interp_modules_test.pdb"
  "interp_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
