# Empty compiler generated dependencies file for interp_modules_test.
# This may be replaced when dependencies are built.
