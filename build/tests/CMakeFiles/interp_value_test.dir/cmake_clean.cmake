file(REMOVE_RECURSE
  "CMakeFiles/interp_value_test.dir/interp_value_test.cc.o"
  "CMakeFiles/interp_value_test.dir/interp_value_test.cc.o.d"
  "interp_value_test"
  "interp_value_test.pdb"
  "interp_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
