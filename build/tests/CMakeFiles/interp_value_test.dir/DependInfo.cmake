
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interp_value_test.cc" "tests/CMakeFiles/interp_value_test.dir/interp_value_test.cc.o" "gcc" "tests/CMakeFiles/interp_value_test.dir/interp_value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/turnstile_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/turnstile_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/turnstile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
