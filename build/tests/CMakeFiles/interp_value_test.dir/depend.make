# Empty dependencies file for interp_value_test.
# This may be replaced when dependencies are built.
