# Empty compiler generated dependencies file for support_status_test.
# This may be replaced when dependencies are built.
