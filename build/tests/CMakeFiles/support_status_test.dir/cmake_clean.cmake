file(REMOVE_RECURSE
  "CMakeFiles/support_status_test.dir/support_status_test.cc.o"
  "CMakeFiles/support_status_test.dir/support_status_test.cc.o.d"
  "support_status_test"
  "support_status_test.pdb"
  "support_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
