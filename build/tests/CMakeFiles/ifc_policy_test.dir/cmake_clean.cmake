file(REMOVE_RECURSE
  "CMakeFiles/ifc_policy_test.dir/ifc_policy_test.cc.o"
  "CMakeFiles/ifc_policy_test.dir/ifc_policy_test.cc.o.d"
  "ifc_policy_test"
  "ifc_policy_test.pdb"
  "ifc_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifc_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
