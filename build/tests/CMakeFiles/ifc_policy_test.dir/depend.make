# Empty dependencies file for ifc_policy_test.
# This may be replaced when dependencies are built.
