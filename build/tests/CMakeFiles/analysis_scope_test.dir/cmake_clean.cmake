file(REMOVE_RECURSE
  "CMakeFiles/analysis_scope_test.dir/analysis_scope_test.cc.o"
  "CMakeFiles/analysis_scope_test.dir/analysis_scope_test.cc.o.d"
  "analysis_scope_test"
  "analysis_scope_test.pdb"
  "analysis_scope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_scope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
