# Empty compiler generated dependencies file for analysis_scope_test.
# This may be replaced when dependencies are built.
