file(REMOVE_RECURSE
  "CMakeFiles/ifc_integrity_test.dir/ifc_integrity_test.cc.o"
  "CMakeFiles/ifc_integrity_test.dir/ifc_integrity_test.cc.o.d"
  "ifc_integrity_test"
  "ifc_integrity_test.pdb"
  "ifc_integrity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifc_integrity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
