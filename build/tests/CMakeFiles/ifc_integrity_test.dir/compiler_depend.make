# Empty compiler generated dependencies file for ifc_integrity_test.
# This may be replaced when dependencies are built.
