file(REMOVE_RECURSE
  "CMakeFiles/corpus_roundtrip_test.dir/corpus_roundtrip_test.cc.o"
  "CMakeFiles/corpus_roundtrip_test.dir/corpus_roundtrip_test.cc.o.d"
  "corpus_roundtrip_test"
  "corpus_roundtrip_test.pdb"
  "corpus_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
