
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/corpus_roundtrip_test.cc" "tests/CMakeFiles/corpus_roundtrip_test.dir/corpus_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/corpus_roundtrip_test.dir/corpus_roundtrip_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/turnstile_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/turnstile_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/dift/CMakeFiles/turnstile_dift.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/turnstile_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/turnstile_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/ifc/CMakeFiles/turnstile_ifc.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/turnstile_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/turnstile_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/turnstile_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/turnstile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
