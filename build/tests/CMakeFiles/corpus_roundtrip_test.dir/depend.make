# Empty dependencies file for corpus_roundtrip_test.
# This may be replaced when dependencies are built.
