file(REMOVE_RECURSE
  "CMakeFiles/analysis_catalog_test.dir/analysis_catalog_test.cc.o"
  "CMakeFiles/analysis_catalog_test.dir/analysis_catalog_test.cc.o.d"
  "analysis_catalog_test"
  "analysis_catalog_test.pdb"
  "analysis_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
