# Empty dependencies file for analysis_catalog_test.
# This may be replaced when dependencies are built.
