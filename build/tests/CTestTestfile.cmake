# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_status_test[1]_include.cmake")
include("/root/repo/build/tests/support_json_test[1]_include.cmake")
include("/root/repo/build/tests/support_strings_test[1]_include.cmake")
include("/root/repo/build/tests/lang_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/lang_parser_test[1]_include.cmake")
include("/root/repo/build/tests/lang_printer_test[1]_include.cmake")
include("/root/repo/build/tests/interp_eval_test[1]_include.cmake")
include("/root/repo/build/tests/interp_builtins_test[1]_include.cmake")
include("/root/repo/build/tests/interp_modules_test[1]_include.cmake")
include("/root/repo/build/tests/ifc_label_test[1]_include.cmake")
include("/root/repo/build/tests/ifc_lattice_test[1]_include.cmake")
include("/root/repo/build/tests/ifc_policy_test[1]_include.cmake")
include("/root/repo/build/tests/dift_tracker_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_querydl_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/flow_engine_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_scope_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/ifc_integrity_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/interp_value_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_catalog_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_compound_test[1]_include.cmake")
include("/root/repo/build/tests/interp_semantics_test[1]_include.cmake")
