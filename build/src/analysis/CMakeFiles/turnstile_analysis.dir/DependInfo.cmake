
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "src/analysis/CMakeFiles/turnstile_analysis.dir/analyzer.cc.o" "gcc" "src/analysis/CMakeFiles/turnstile_analysis.dir/analyzer.cc.o.d"
  "/root/repo/src/analysis/catalog.cc" "src/analysis/CMakeFiles/turnstile_analysis.dir/catalog.cc.o" "gcc" "src/analysis/CMakeFiles/turnstile_analysis.dir/catalog.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/turnstile_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/turnstile_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/scope.cc" "src/analysis/CMakeFiles/turnstile_analysis.dir/scope.cc.o" "gcc" "src/analysis/CMakeFiles/turnstile_analysis.dir/scope.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/turnstile_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/turnstile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
