file(REMOVE_RECURSE
  "libturnstile_analysis.a"
)
