# Empty compiler generated dependencies file for turnstile_analysis.
# This may be replaced when dependencies are built.
