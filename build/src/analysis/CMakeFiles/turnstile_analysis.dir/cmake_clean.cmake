file(REMOVE_RECURSE
  "CMakeFiles/turnstile_analysis.dir/analyzer.cc.o"
  "CMakeFiles/turnstile_analysis.dir/analyzer.cc.o.d"
  "CMakeFiles/turnstile_analysis.dir/catalog.cc.o"
  "CMakeFiles/turnstile_analysis.dir/catalog.cc.o.d"
  "CMakeFiles/turnstile_analysis.dir/report.cc.o"
  "CMakeFiles/turnstile_analysis.dir/report.cc.o.d"
  "CMakeFiles/turnstile_analysis.dir/scope.cc.o"
  "CMakeFiles/turnstile_analysis.dir/scope.cc.o.d"
  "libturnstile_analysis.a"
  "libturnstile_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
