file(REMOVE_RECURSE
  "libturnstile_baseline.a"
)
