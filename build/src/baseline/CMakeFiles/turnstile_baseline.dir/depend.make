# Empty dependencies file for turnstile_baseline.
# This may be replaced when dependencies are built.
