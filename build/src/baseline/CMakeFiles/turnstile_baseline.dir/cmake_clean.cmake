file(REMOVE_RECURSE
  "CMakeFiles/turnstile_baseline.dir/querydl.cc.o"
  "CMakeFiles/turnstile_baseline.dir/querydl.cc.o.d"
  "libturnstile_baseline.a"
  "libturnstile_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
