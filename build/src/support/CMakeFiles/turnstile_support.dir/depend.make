# Empty dependencies file for turnstile_support.
# This may be replaced when dependencies are built.
