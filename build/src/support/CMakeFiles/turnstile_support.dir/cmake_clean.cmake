file(REMOVE_RECURSE
  "CMakeFiles/turnstile_support.dir/json.cc.o"
  "CMakeFiles/turnstile_support.dir/json.cc.o.d"
  "CMakeFiles/turnstile_support.dir/logging.cc.o"
  "CMakeFiles/turnstile_support.dir/logging.cc.o.d"
  "CMakeFiles/turnstile_support.dir/status.cc.o"
  "CMakeFiles/turnstile_support.dir/status.cc.o.d"
  "CMakeFiles/turnstile_support.dir/strings.cc.o"
  "CMakeFiles/turnstile_support.dir/strings.cc.o.d"
  "libturnstile_support.a"
  "libturnstile_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
