file(REMOVE_RECURSE
  "libturnstile_support.a"
)
