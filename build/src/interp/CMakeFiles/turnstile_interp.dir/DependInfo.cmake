
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/builtins.cc" "src/interp/CMakeFiles/turnstile_interp.dir/builtins.cc.o" "gcc" "src/interp/CMakeFiles/turnstile_interp.dir/builtins.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/interp/CMakeFiles/turnstile_interp.dir/interpreter.cc.o" "gcc" "src/interp/CMakeFiles/turnstile_interp.dir/interpreter.cc.o.d"
  "/root/repo/src/interp/modules.cc" "src/interp/CMakeFiles/turnstile_interp.dir/modules.cc.o" "gcc" "src/interp/CMakeFiles/turnstile_interp.dir/modules.cc.o.d"
  "/root/repo/src/interp/value.cc" "src/interp/CMakeFiles/turnstile_interp.dir/value.cc.o" "gcc" "src/interp/CMakeFiles/turnstile_interp.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/turnstile_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/turnstile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
