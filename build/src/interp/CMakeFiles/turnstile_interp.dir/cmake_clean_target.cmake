file(REMOVE_RECURSE
  "libturnstile_interp.a"
)
