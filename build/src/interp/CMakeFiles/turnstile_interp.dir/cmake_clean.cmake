file(REMOVE_RECURSE
  "CMakeFiles/turnstile_interp.dir/builtins.cc.o"
  "CMakeFiles/turnstile_interp.dir/builtins.cc.o.d"
  "CMakeFiles/turnstile_interp.dir/interpreter.cc.o"
  "CMakeFiles/turnstile_interp.dir/interpreter.cc.o.d"
  "CMakeFiles/turnstile_interp.dir/modules.cc.o"
  "CMakeFiles/turnstile_interp.dir/modules.cc.o.d"
  "CMakeFiles/turnstile_interp.dir/value.cc.o"
  "CMakeFiles/turnstile_interp.dir/value.cc.o.d"
  "libturnstile_interp.a"
  "libturnstile_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
