# Empty compiler generated dependencies file for turnstile_interp.
# This may be replaced when dependencies are built.
