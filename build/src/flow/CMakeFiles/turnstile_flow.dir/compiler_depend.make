# Empty compiler generated dependencies file for turnstile_flow.
# This may be replaced when dependencies are built.
