file(REMOVE_RECURSE
  "CMakeFiles/turnstile_flow.dir/engine.cc.o"
  "CMakeFiles/turnstile_flow.dir/engine.cc.o.d"
  "CMakeFiles/turnstile_flow.dir/workload.cc.o"
  "CMakeFiles/turnstile_flow.dir/workload.cc.o.d"
  "libturnstile_flow.a"
  "libturnstile_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
