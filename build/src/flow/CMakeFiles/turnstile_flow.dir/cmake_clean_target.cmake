file(REMOVE_RECURSE
  "libturnstile_flow.a"
)
