file(REMOVE_RECURSE
  "CMakeFiles/turnstile_ifc.dir/label.cc.o"
  "CMakeFiles/turnstile_ifc.dir/label.cc.o.d"
  "CMakeFiles/turnstile_ifc.dir/lattice.cc.o"
  "CMakeFiles/turnstile_ifc.dir/lattice.cc.o.d"
  "CMakeFiles/turnstile_ifc.dir/policy.cc.o"
  "CMakeFiles/turnstile_ifc.dir/policy.cc.o.d"
  "libturnstile_ifc.a"
  "libturnstile_ifc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_ifc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
