file(REMOVE_RECURSE
  "libturnstile_ifc.a"
)
