# Empty dependencies file for turnstile_ifc.
# This may be replaced when dependencies are built.
