file(REMOVE_RECURSE
  "CMakeFiles/turnstile_dift.dir/tracker.cc.o"
  "CMakeFiles/turnstile_dift.dir/tracker.cc.o.d"
  "libturnstile_dift.a"
  "libturnstile_dift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_dift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
