file(REMOVE_RECURSE
  "libturnstile_dift.a"
)
