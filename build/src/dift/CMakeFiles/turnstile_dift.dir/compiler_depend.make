# Empty compiler generated dependencies file for turnstile_dift.
# This may be replaced when dependencies are built.
