# Empty dependencies file for turnstile_instrument.
# This may be replaced when dependencies are built.
