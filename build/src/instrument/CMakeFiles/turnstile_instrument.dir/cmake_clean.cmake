file(REMOVE_RECURSE
  "CMakeFiles/turnstile_instrument.dir/instrumentor.cc.o"
  "CMakeFiles/turnstile_instrument.dir/instrumentor.cc.o.d"
  "libturnstile_instrument.a"
  "libturnstile_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
