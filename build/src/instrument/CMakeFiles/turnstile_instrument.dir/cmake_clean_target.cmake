file(REMOVE_RECURSE
  "libturnstile_instrument.a"
)
