file(REMOVE_RECURSE
  "libturnstile_lang.a"
)
