
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cc" "src/lang/CMakeFiles/turnstile_lang.dir/ast.cc.o" "gcc" "src/lang/CMakeFiles/turnstile_lang.dir/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/turnstile_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/turnstile_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/turnstile_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/turnstile_lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/printer.cc" "src/lang/CMakeFiles/turnstile_lang.dir/printer.cc.o" "gcc" "src/lang/CMakeFiles/turnstile_lang.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/turnstile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
