# Empty compiler generated dependencies file for turnstile_lang.
# This may be replaced when dependencies are built.
