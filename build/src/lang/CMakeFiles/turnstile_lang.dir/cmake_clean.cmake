file(REMOVE_RECURSE
  "CMakeFiles/turnstile_lang.dir/ast.cc.o"
  "CMakeFiles/turnstile_lang.dir/ast.cc.o.d"
  "CMakeFiles/turnstile_lang.dir/lexer.cc.o"
  "CMakeFiles/turnstile_lang.dir/lexer.cc.o.d"
  "CMakeFiles/turnstile_lang.dir/parser.cc.o"
  "CMakeFiles/turnstile_lang.dir/parser.cc.o.d"
  "CMakeFiles/turnstile_lang.dir/printer.cc.o"
  "CMakeFiles/turnstile_lang.dir/printer.cc.o.d"
  "libturnstile_lang.a"
  "libturnstile_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
