
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus.cc.o" "gcc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus.cc.o.d"
  "/root/repo/src/corpus/corpus_data_a1.cc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_a1.cc.o" "gcc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_a1.cc.o.d"
  "/root/repo/src/corpus/corpus_data_a2.cc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_a2.cc.o" "gcc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_a2.cc.o.d"
  "/root/repo/src/corpus/corpus_data_b.cc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_b.cc.o" "gcc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_b.cc.o.d"
  "/root/repo/src/corpus/corpus_data_d.cc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_d.cc.o" "gcc" "src/corpus/CMakeFiles/turnstile_corpus.dir/corpus_data_d.cc.o.d"
  "/root/repo/src/corpus/driver.cc" "src/corpus/CMakeFiles/turnstile_corpus.dir/driver.cc.o" "gcc" "src/corpus/CMakeFiles/turnstile_corpus.dir/driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/turnstile_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/dift/CMakeFiles/turnstile_dift.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/turnstile_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/turnstile_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/turnstile_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/turnstile_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ifc/CMakeFiles/turnstile_ifc.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/turnstile_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/turnstile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
