file(REMOVE_RECURSE
  "libturnstile_corpus.a"
)
