# Empty dependencies file for turnstile_corpus.
# This may be replaced when dependencies are built.
