file(REMOVE_RECURSE
  "CMakeFiles/turnstile_corpus.dir/corpus.cc.o"
  "CMakeFiles/turnstile_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_a1.cc.o"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_a1.cc.o.d"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_a2.cc.o"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_a2.cc.o.d"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_b.cc.o"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_b.cc.o.d"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_d.cc.o"
  "CMakeFiles/turnstile_corpus.dir/corpus_data_d.cc.o.d"
  "CMakeFiles/turnstile_corpus.dir/driver.cc.o"
  "CMakeFiles/turnstile_corpus.dir/driver.cc.o.d"
  "libturnstile_corpus.a"
  "libturnstile_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
